//! Fixture corpus: one known-bad and one known-clean file per rule
//! (DL001–DL009) under `tests/fixtures/`, analyzed exactly as the
//! workspace scan would see them. The corpus directory itself is
//! excluded from the workspace scan (`tests/fixtures` is skipped by
//! `collect_rs_files`) so the deliberately-dirty files never pollute
//! the real gate.
//!
//! Each fixture is analyzed in isolation: the taint and lock passes
//! union facts across everything they are given, so batching the corpus
//! would let one fixture's helpers contaminate another's verdict.

use std::path::{Path, PathBuf};

use opml_detlint::{analyze_sources, Analysis};

/// Every fixture in the corpus, in scan order.
const FIXTURES: &[&str] = &[
    "dl001_bad.rs",
    "dl001_clean.rs",
    "dl002_bad.rs",
    "dl002_clean.rs",
    "dl003_bad.rs",
    "dl003_clean.rs",
    "dl004_bad.rs",
    "dl004_clean.rs",
    "dl005_bad.rs",
    "dl005_clean.rs",
    "dl006_bad.rs",
    "dl006_clean.rs",
    "dl007_bad.rs",
    "dl007_clean.rs",
    "dl008_bad.rs",
    "dl008_clean.rs",
    "dl009_bad.rs",
    "dl009_clean.rs",
];

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// The workspace-relative path a fixture pretends to live at. DL008
/// only scopes `crates/{testbed,cohort,sched}/src`, so the panic
/// fixtures borrow a cohort path; everything else scans under a
/// neutral crate name.
fn scan_path(name: &str) -> String {
    if name.starts_with("dl008") {
        format!("crates/cohort/src/{name}")
    } else {
        format!("crates/lintfix/src/{name}")
    }
}

fn analyze_fixture(name: &str) -> Analysis {
    let src = std::fs::read_to_string(fixture_dir().join(name))
        .unwrap_or_else(|e| panic!("read fixture {name}: {e}"));
    analyze_sources(&[(scan_path(name), src)])
}

fn rules_of(a: &Analysis) -> Vec<&str> {
    a.findings.iter().map(|f| f.rule.as_str()).collect()
}

#[test]
fn bad_fixtures_flag_exactly_their_rule() {
    let expected: &[(&str, &[&str])] = &[
        ("dl001_bad.rs", &["DL001"]),
        ("dl002_bad.rs", &["DL002"]),
        ("dl003_bad.rs", &["DL003"]),
        ("dl004_bad.rs", &["DL004"]),
        // The reasonless allow leaves its DL001 live and adds a DL005;
        // the unknown rule id adds a second DL005.
        ("dl005_bad.rs", &["DL005", "DL001", "DL005"]),
        ("dl006_bad.rs", &["DL006"]),
        ("dl007_bad.rs", &["DL006", "DL007"]),
        ("dl008_bad.rs", &["DL008"]),
        ("dl009_bad.rs", &["DL009"]),
    ];
    for (name, want) in expected {
        let a = analyze_fixture(name);
        assert_eq!(
            &rules_of(&a),
            want,
            "{name} findings drifted: {:#?}",
            a.findings
        );
    }
}

#[test]
fn clean_fixtures_are_clean() {
    for name in FIXTURES.iter().filter(|n| n.ends_with("_clean.rs")) {
        let a = analyze_fixture(name);
        assert!(a.is_clean(), "{name} should be clean: {:#?}", a.findings);
    }
    // The DL005 clean fixture is clean *because* its suppression is
    // well-formed — the silenced DL001 must show up as suppressed.
    let a = analyze_fixture("dl005_clean.rs");
    assert_eq!(a.suppressed.len(), 1);
    assert_eq!(a.suppressed[0].finding.rule, "DL001");
}

/// The acceptance scenario for the interprocedural pass: a
/// cross-function hash-order leak on which every pre-existing rule
/// (DL001–DL005) is silent, caught only by the taint rules.
#[test]
fn cross_function_leak_invisible_to_old_rules() {
    let a = analyze_fixture("dl007_bad.rs");
    let rules = rules_of(&a);
    for old in ["DL001", "DL002", "DL003", "DL004", "DL005"] {
        assert!(
            !rules.contains(&old),
            "{old} unexpectedly fired on the split leak: {:#?}",
            a.findings
        );
    }
    assert!(rules.contains(&"DL006"), "helper not classified as source");
    assert!(rules.contains(&"DL007"), "caller sink not flagged");
}

/// DL008 crosses the call from the entry point into the helper and
/// names both ends in the message.
#[test]
fn panic_reachability_names_root_and_site() {
    let a = analyze_fixture("dl008_bad.rs");
    assert_eq!(rules_of(&a), ["DL008"]);
    let msg = &a.findings[0].message;
    assert!(msg.contains("settle_invoice"), "{msg}");
    assert!(msg.contains("simulate_semester_serial"), "{msg}");
}

/// Golden test over the machine-readable output: every fixture's JSON
/// rendering, concatenated in corpus order. Regenerate deliberately
/// with `UPDATE_GOLDEN=1 cargo test -p opml-detlint --test fixtures`
/// and review the diff — this file is the contract for `--format json`.
#[test]
fn golden_json_output() {
    let mut got = String::new();
    for name in FIXTURES {
        got.push_str(&format!("== {name} ==\n"));
        got.push_str(&analyze_fixture(name).to_json());
        got.push('\n');
    }
    let path = fixture_dir().join("corpus.golden");
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, &got).expect("write golden");
        return;
    }
    let want =
        std::fs::read_to_string(&path).expect("missing corpus.golden — run with UPDATE_GOLDEN=1");
    assert_eq!(
        got, want,
        "fixture JSON drifted; if intentional, regenerate with UPDATE_GOLDEN=1 and review"
    );
}

/// The linter holds itself to its own standard: detlint's sources pass
/// detlint.
#[test]
fn detlint_lints_itself_clean() {
    let src_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut sources = Vec::new();
    let mut names: Vec<PathBuf> = std::fs::read_dir(&src_dir)
        .expect("read src dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    names.sort();
    for path in names {
        let rel = format!(
            "crates/detlint/src/{}",
            path.file_name().expect("file name").to_string_lossy()
        );
        let src = std::fs::read_to_string(&path).expect("read source");
        sources.push((rel, src));
    }
    assert!(sources.len() >= 8, "detlint source files went missing?");
    let a = analyze_sources(&sources);
    assert!(
        a.is_clean(),
        "detlint fails its own lint: {:#?}",
        a.findings
    );
}
