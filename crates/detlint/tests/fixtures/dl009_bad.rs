//! detlint fixture: DL009 — a float reduction inside shard-merge code.
//! Addition over `f64` is not associative, so the merged total depends
//! on how the shards happened to be grouped.
//! Expected: one DL009 finding on the `.sum::<f64>()` terminal.

pub fn merge_shard_costs(shards: &[Vec<f64>]) -> f64 {
    shards.iter().flatten().sum::<f64>()
}
