//! detlint fixture: DL009 clean — the merge accumulates integer
//! microcents; integer addition is associative, so any shard grouping
//! produces identical totals.

pub fn merge_shard_costs(shards: &[Vec<u64>]) -> u64 {
    shards.iter().flatten().sum::<u64>()
}
