//! detlint fixture: DL006 — a taint source: the function's declared
//! return type is an iterator and its body iterates a hash table, so
//! every caller inherits nondeterministic order.
//! Expected: one DL006 finding on `active_names`.

use std::collections::HashMap;

pub fn active_names(index: &HashMap<u32, String>) -> impl Iterator<Item = &String> {
    index.values().filter(|name| !name.is_empty())
}
