//! detlint fixture: DL002 — hash-iteration order leaking into an
//! ordered sink inside one function.
//! Expected: one DL002 finding on the `keys()...collect` chain.

use std::collections::HashMap;

pub fn user_ids(users: &HashMap<u32, String>) -> Vec<u32> {
    users.keys().copied().collect::<Vec<u32>>()
}
