//! detlint fixture: DL001 clean — time comes from the simulation clock,
//! and banned API names inside string literals or comments stay inert.

pub fn elapsed_ticks(now: u64, start: u64) -> u64 {
    // A real wall-clock read would be `Instant::now()` — this comment
    // and the label below must not trip the lexer.
    let _label = "Instant::now";
    now - start
}
