//! detlint fixture: DL007 — the cross-function hash-order leak that
//! intra-function DL002 provably misses. The helper is DL002-clean (no
//! order-sensitive terminal in its body); the caller is DL002-clean (no
//! hash container in sight); the leak only exists across the call.
//! Expected: DL006 on `shard_tags`, DL007 on the caller's for-loop,
//! and nothing at all from DL001–DL005.

use std::collections::HashMap;

fn shard_tags() -> impl Iterator<Item = u32> {
    let index: HashMap<u32, &'static str> = [(3, "c"), (1, "a"), (2, "b")].into_iter().collect();
    index.into_keys()
}

pub fn tag_rollup() -> Vec<u32> {
    let mut out = Vec::new();
    for tag in shard_tags() {
        out.push(tag);
    }
    out
}
