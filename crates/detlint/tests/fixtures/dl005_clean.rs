//! detlint fixture: DL005 clean — a well-formed suppression with a
//! reason silences the DL001 and draws no DL005.

use std::time::Instant;

pub fn stamp() -> u64 {
    // detlint::allow(DL001): operator-facing timestamp outside the simulation
    let t = Instant::now();
    t.elapsed().as_secs()
}
