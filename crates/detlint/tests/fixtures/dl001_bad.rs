//! detlint fixture: DL001 — banned nondeterminism APIs.
//! Expected: one DL001 finding on the `Instant::now()` line.

use std::time::Instant;

pub fn elapsed_ms() -> u128 {
    let start = Instant::now();
    start.elapsed().as_millis()
}
