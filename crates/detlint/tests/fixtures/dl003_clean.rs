//! detlint fixture: DL003 clean — collect in index order in parallel,
//! then reduce sequentially so the grouping is pinned.

use rayon::prelude::*;

pub fn total_energy(samples: &[f64]) -> f64 {
    let squares: Vec<f64> = samples.par_iter().map(|x| x * x).collect();
    squares.iter().sum()
}
