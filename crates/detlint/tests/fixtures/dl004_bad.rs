//! detlint fixture: DL004 — two functions acquire the same pair of
//! locks in opposite orders: a classic deadlock cycle.
//! Expected: one DL004 finding naming the `ledger`/`audit` cycle.

use std::sync::Mutex;

pub struct Accounts {
    ledger: Mutex<Vec<u64>>,
    audit: Mutex<Vec<u64>>,
}

impl Accounts {
    pub fn post(&self, amount: u64) {
        let mut ledger = self.ledger.lock().unwrap();
        let mut audit = self.audit.lock().unwrap();
        ledger.push(amount);
        audit.push(amount);
    }

    pub fn reconcile(&self) -> usize {
        let audit = self.audit.lock().unwrap();
        let ledger = self.ledger.lock().unwrap();
        audit.len() + ledger.len()
    }
}
