//! detlint fixture: DL007 clean — the helper sorts before returning a
//! concrete collection, so no taint crosses the call.

use std::collections::HashMap;

fn shard_tags() -> Vec<u32> {
    let index: HashMap<u32, &'static str> = [(3, "c"), (1, "a"), (2, "b")].into_iter().collect();
    let mut tags: Vec<u32> = index.into_keys().collect();
    tags.sort_unstable();
    tags
}

pub fn tag_rollup() -> Vec<u32> {
    let mut out = Vec::new();
    for tag in shard_tags() {
        out.push(tag);
    }
    out
}
