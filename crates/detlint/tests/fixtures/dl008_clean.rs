//! detlint fixture: DL008 clean — the reachable helper handles the
//! `None` arm instead of panicking, and panics inside `#[cfg(test)]`
//! code are exempt by design.

pub fn simulate_semester_serial(seeds: &[u64]) -> u64 {
    let mut total = 0;
    for &seed in seeds {
        total += settle_invoice(seed);
    }
    total
}

fn settle_invoice(seed: u64) -> u64 {
    seed.checked_mul(3).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn settles() {
        // Test code may panic freely: this unwrap must not be flagged.
        assert_eq!(super::settle_invoice(2).checked_add(0).unwrap(), 6);
    }
}
