//! detlint fixture: DL005 — malformed suppressions. A reasonless allow
//! leaves the underlying finding live and earns a DL005; an unknown
//! rule id earns another.
//! Expected: DL001 (still live) + two DL005 findings.

use std::time::Instant;

pub fn stamp() -> u64 {
    // detlint::allow(DL001)
    let t = Instant::now();
    t.elapsed().as_secs()
}

// detlint::allow(DL999): no such rule id
pub fn other() {}
