//! detlint fixture: DL002 clean — the collected keys are sorted before
//! anything order-sensitive can observe them.

use std::collections::HashMap;

pub fn user_ids(users: &HashMap<u32, String>) -> Vec<u32> {
    let mut ids: Vec<u32> = users.keys().copied().collect();
    ids.sort_unstable();
    ids
}
