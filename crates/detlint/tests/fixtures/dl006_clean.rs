//! detlint fixture: DL006 clean — the same shape over a BTreeMap:
//! iteration order is the key order, so the returned iterator is safe.

use std::collections::BTreeMap;

pub fn active_names(index: &BTreeMap<u32, String>) -> impl Iterator<Item = &String> {
    index.values().filter(|name| !name.is_empty())
}
