//! detlint fixture: DL003 — non-associative float reduction over a
//! parallel iterator: the grouping (and therefore the rounding) depends
//! on the thread count.
//! Expected: one DL003 finding on the `.sum::<f64>()` terminal.

use rayon::prelude::*;

pub fn total_energy(samples: &[f64]) -> f64 {
    samples.par_iter().map(|x| x * x).sum::<f64>()
}
