//! detlint fixture: DL004 clean — every function acquires the locks in
//! the same order (`ledger` before `audit`), so no cycle exists.

use std::sync::Mutex;

pub struct Accounts {
    ledger: Mutex<Vec<u64>>,
    audit: Mutex<Vec<u64>>,
}

impl Accounts {
    pub fn post(&self, amount: u64) {
        let mut ledger = self.ledger.lock().unwrap();
        let mut audit = self.audit.lock().unwrap();
        ledger.push(amount);
        audit.push(amount);
    }

    pub fn reconcile(&self) -> usize {
        let ledger = self.ledger.lock().unwrap();
        let audit = self.audit.lock().unwrap();
        ledger.len() + audit.len()
    }
}
