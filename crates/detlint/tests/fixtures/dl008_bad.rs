//! detlint fixture: DL008 — a panic site transitively reachable from a
//! simulation entry point. The analysis must cross the call from
//! `simulate_semester_serial` into the helper.
//! Expected: one DL008 finding on the `.unwrap()` in `settle_invoice`,
//! attributed to the `simulate_semester_serial` root.

pub fn simulate_semester_serial(seeds: &[u64]) -> u64 {
    let mut total = 0;
    for &seed in seeds {
        total += settle_invoice(seed);
    }
    total
}

fn settle_invoice(seed: u64) -> u64 {
    let tripled: Option<u64> = seed.checked_mul(3);
    tripled.unwrap()
}
