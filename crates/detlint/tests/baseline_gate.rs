//! End-to-end test of the CI ratchet: the `detlint` binary run against
//! a miniature workspace must accept exactly the committed baseline and
//! fail on anything new. This is the same contract `scripts/check.sh`
//! relies on.

use std::path::Path;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_detlint"))
}

/// Build a throwaway one-crate workspace with a single DL001 finding.
fn seed_workspace() -> std::path::PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("detlint-gate");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("src")).expect("mkdir");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("manifest");
    std::fs::write(
        dir.join("src/lib.rs"),
        "pub fn stamp() -> std::time::Instant {\n    std::time::Instant::now()\n}\n",
    )
    .expect("seed source");
    dir
}

#[test]
fn baseline_gate_accepts_old_and_blocks_new() {
    let dir = seed_workspace();
    let baseline = dir.join("detlint.baseline.json");

    // Without a baseline the pre-existing finding fails the run.
    let out = bin().arg("--root").arg(&dir).output().expect("run");
    assert_eq!(
        out.status.code(),
        Some(1),
        "expected the DL001 to fail the bare run"
    );

    // Accept the backlog.
    let out = bin()
        .arg("--root")
        .arg(&dir)
        .arg("--write-baseline")
        .arg(&baseline)
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(0), "{:?}", out);

    // The gate now passes: same findings, all baselined.
    let out = bin()
        .arg("--root")
        .arg(&dir)
        .arg("--baseline")
        .arg(&baseline)
        .output()
        .expect("run");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Seed a regression the baseline has never seen: the gate must trip.
    std::fs::write(
        dir.join("src/extra.rs"),
        "pub fn jitter() -> u64 {\n    rand::rng().random()\n}\n",
    )
    .expect("regression source");
    let out = bin()
        .arg("--root")
        .arg(&dir)
        .arg("--baseline")
        .arg(&baseline)
        .output()
        .expect("run");
    assert_eq!(
        out.status.code(),
        Some(1),
        "regression slipped past the baseline"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("DL001"), "{stdout}");
    assert!(stdout.contains("extra.rs"), "{stdout}");

    // Fix both findings: the gate passes again and reports the now-stale
    // baseline entry so the ratchet can be tightened.
    std::fs::remove_file(dir.join("src/extra.rs")).expect("drop regression");
    std::fs::write(
        dir.join("src/lib.rs"),
        "pub fn stamp() -> u64 {\n    41\n}\n",
    )
    .expect("fixed source");
    let out = bin()
        .arg("--root")
        .arg(&dir)
        .arg("--baseline")
        .arg(&baseline)
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(0));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("stale baseline entry"), "{stderr}");
}

#[test]
fn malformed_baseline_is_a_usage_error() {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("detlint-badline");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("src")).expect("mkdir");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("manifest");
    std::fs::write(dir.join("src/lib.rs"), "pub fn ok() {}\n").expect("source");
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "{\"schema\": \"other/v9\", \"findings\": []}\n").expect("bad baseline");
    let out = bin()
        .arg("--root")
        .arg(&dir)
        .arg("--baseline")
        .arg(&bad)
        .output()
        .expect("run");
    assert_eq!(
        out.status.code(),
        Some(2),
        "wrong schema must be a hard error"
    );
}
