//! Accepted-findings baseline: the determinism ratchet's memory.
//!
//! A committed `detlint.baseline.json` records findings that are
//! accepted for now; the CI gate fails only on findings *not* in the
//! baseline, the same one-way ratchet the `BENCH_*.json` floors give
//! perf. Entries are keyed by `(rule, file, excerpt)` — excerpts (the
//! trimmed source line) survive unrelated line drift, while any edit to
//! the flagged line itself re-opens the finding for review. Identical
//! lines are disambiguated by a `count`.
//!
//! The vendored `serde_json` shim only serializes, so this module
//! carries its own parser for the subset of JSON the writer emits
//! (objects, arrays, strings with escapes, integers) — strict enough to
//! reject hand-edits that would silently widen the baseline.

use std::collections::BTreeMap;
use std::path::Path;

use serde::Serialize;

use crate::{Analysis, Finding};

/// Schema tag written into (and required from) every baseline file.
pub const BASELINE_SCHEMA: &str = "detlint-baseline/v1";

/// One accepted finding (aggregated over identical lines).
#[derive(Debug, Clone, Serialize, PartialEq, Eq, PartialOrd, Ord)]
pub struct BaselineEntry {
    /// Rule id (`DL001`…).
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Trimmed source-line excerpt the finding anchors to.
    pub excerpt: String,
    /// How many findings share this (rule, file, excerpt) key.
    pub count: usize,
}

/// A set of accepted findings.
#[derive(Debug, Default, Serialize)]
pub struct Baseline {
    /// Schema tag ([`BASELINE_SCHEMA`]).
    pub schema: String,
    /// Accepted findings, sorted by (rule, file, excerpt).
    pub findings: Vec<BaselineEntry>,
}

impl Baseline {
    /// Aggregate every finding of `analysis` into a fresh baseline.
    pub fn from_analysis(analysis: &Analysis) -> Baseline {
        let mut counts: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        for f in &analysis.findings {
            *counts
                .entry((f.rule.clone(), f.file.clone(), f.excerpt.clone()))
                .or_insert(0) += 1;
        }
        Baseline {
            schema: BASELINE_SCHEMA.to_string(),
            findings: counts
                .into_iter()
                .map(|((rule, file, excerpt), count)| BaselineEntry {
                    rule,
                    file,
                    excerpt,
                    count,
                })
                .collect(),
        }
    }

    /// Serialize to the committed JSON form.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|e| format!("{{\"error\": \"{e}\"}}"))
    }

    /// Load a baseline file.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Budget remaining per key, for matching.
    fn budgets(&self) -> BTreeMap<(String, String, String), usize> {
        self.findings
            .iter()
            .map(|e| ((e.rule.clone(), e.file.clone(), e.excerpt.clone()), e.count))
            .collect()
    }
}

impl Analysis {
    /// Split the findings against `baseline`: matched findings move to
    /// [`Analysis::baselined`], unmatched ones stay in
    /// [`Analysis::findings`] and keep failing the gate. Returns the
    /// stale entries — baseline keys no finding consumed — so the
    /// ratchet can be tightened.
    pub fn apply_baseline(&mut self, baseline: &Baseline) -> Vec<BaselineEntry> {
        let mut budgets = baseline.budgets();
        let mut active: Vec<Finding> = Vec::new();
        let mut matched: Vec<Finding> = Vec::new();
        for f in self.findings.drain(..) {
            let key = (f.rule.clone(), f.file.clone(), f.excerpt.clone());
            let consumed = match budgets.get_mut(&key) {
                Some(budget) if *budget > 0 => {
                    *budget -= 1;
                    true
                }
                _ => false,
            };
            if consumed {
                matched.push(f);
            } else {
                active.push(f);
            }
        }
        self.findings = active;
        self.baselined = matched;
        baseline
            .findings
            .iter()
            .filter_map(|e| {
                let left = budgets[&(e.rule.clone(), e.file.clone(), e.excerpt.clone())];
                (left > 0).then(|| BaselineEntry {
                    count: left,
                    ..e.clone()
                })
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON reader for the baseline subset
// ---------------------------------------------------------------------------

fn parse(text: &str) -> Result<Baseline, String> {
    let mut p = Parser {
        chars: text.chars().collect(),
        at: 0,
    };
    p.skip_ws();
    p.expect('{')?;
    let mut schema = None;
    let mut findings = Vec::new();
    loop {
        p.skip_ws();
        if p.eat('}') {
            break;
        }
        let key = p.string()?;
        p.skip_ws();
        p.expect(':')?;
        p.skip_ws();
        match key.as_str() {
            "schema" => schema = Some(p.string()?),
            "findings" => {
                p.expect('[')?;
                loop {
                    p.skip_ws();
                    if p.eat(']') {
                        break;
                    }
                    findings.push(p.entry()?);
                    p.skip_ws();
                    if !p.eat(',') {
                        p.skip_ws();
                        p.expect(']')?;
                        break;
                    }
                }
            }
            other => return Err(format!("unknown top-level key `{other}`")),
        }
        p.skip_ws();
        if !p.eat(',') {
            p.skip_ws();
            p.expect('}')?;
            break;
        }
    }
    match schema.as_deref() {
        Some(BASELINE_SCHEMA) => Ok(Baseline {
            schema: BASELINE_SCHEMA.to_string(),
            findings,
        }),
        Some(other) => Err(format!(
            "unsupported baseline schema `{other}` (expected `{BASELINE_SCHEMA}`)"
        )),
        None => Err("baseline is missing the `schema` field".to_string()),
    }
}

struct Parser {
    chars: Vec<char>,
    at: usize,
}

impl Parser {
    fn skip_ws(&mut self) {
        while self.chars.get(self.at).is_some_and(|c| c.is_whitespace()) {
            self.at += 1;
        }
    }

    fn eat(&mut self, c: char) -> bool {
        if self.chars.get(self.at) == Some(&c) {
            self.at += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(format!(
                "expected `{c}` at offset {}, found {:?}",
                self.at,
                self.chars.get(self.at)
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.chars.get(self.at) {
                None => return Err("unterminated string".to_string()),
                Some('"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    self.at += 1;
                    let esc = self
                        .chars
                        .get(self.at)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    out.push(match esc {
                        '"' => '"',
                        '\\' => '\\',
                        '/' => '/',
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        'u' => {
                            let hex: String = self.chars[self.at + 1..].iter().take(4).collect();
                            self.at += 4;
                            u32::from_str_radix(&hex, 16)
                                .ok()
                                .and_then(char::from_u32)
                                .ok_or_else(|| format!("bad unicode escape \\u{hex}"))?
                        }
                        other => return Err(format!("unsupported escape \\{other}")),
                    });
                    self.at += 1;
                }
                Some(&c) => {
                    out.push(c);
                    self.at += 1;
                }
            }
        }
    }

    fn number(&mut self) -> Result<usize, String> {
        let start = self.at;
        while self.chars.get(self.at).is_some_and(|c| c.is_ascii_digit()) {
            self.at += 1;
        }
        let text: String = self.chars[start..self.at].iter().collect();
        text.parse().map_err(|e| format!("bad count `{text}`: {e}"))
    }

    fn entry(&mut self) -> Result<BaselineEntry, String> {
        self.skip_ws();
        self.expect('{')?;
        let mut rule = None;
        let mut file = None;
        let mut excerpt = None;
        let mut count = None;
        loop {
            self.skip_ws();
            if self.eat('}') {
                break;
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            self.skip_ws();
            match key.as_str() {
                "rule" => rule = Some(self.string()?),
                "file" => file = Some(self.string()?),
                "excerpt" => excerpt = Some(self.string()?),
                "count" => count = Some(self.number()?),
                other => return Err(format!("unknown entry key `{other}`")),
            }
            self.skip_ws();
            if !self.eat(',') {
                self.skip_ws();
                self.expect('}')?;
                break;
            }
        }
        Ok(BaselineEntry {
            rule: rule.ok_or("entry missing `rule`")?,
            file: file.ok_or("entry missing `file`")?,
            excerpt: excerpt.ok_or("entry missing `excerpt`")?,
            count: count.unwrap_or(1),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &str, file: &str, excerpt: &str) -> Finding {
        Finding {
            rule: rule.to_string(),
            file: file.to_string(),
            line: 1,
            message: String::new(),
            excerpt: excerpt.to_string(),
        }
    }

    #[test]
    fn roundtrip_through_json() {
        let mut a = Analysis::default();
        a.findings
            .push(finding("DL008", "crates/x/src/a.rs", "x.unwrap()"));
        a.findings
            .push(finding("DL008", "crates/x/src/a.rs", "x.unwrap()"));
        a.findings
            .push(finding("DL002", "crates/y/src/b.rs", "m.keys().collect()"));
        let b = Baseline::from_analysis(&a);
        let parsed = parse(&b.to_json()).expect("roundtrip parse");
        assert_eq!(parsed.findings, b.findings);
        assert_eq!(parsed.findings[1].count, 2);
    }

    #[test]
    fn apply_matches_and_reports_stale() {
        let mut a = Analysis::default();
        a.findings.push(finding("DL008", "f.rs", "x.unwrap()"));
        a.findings.push(finding("DL008", "f.rs", "brand_new()"));
        let baseline = Baseline {
            schema: BASELINE_SCHEMA.to_string(),
            findings: vec![
                BaselineEntry {
                    rule: "DL008".into(),
                    file: "f.rs".into(),
                    excerpt: "x.unwrap()".into(),
                    count: 2,
                },
                BaselineEntry {
                    rule: "DL001".into(),
                    file: "gone.rs".into(),
                    excerpt: "Instant::now()".into(),
                    count: 1,
                },
            ],
        };
        let stale = a.apply_baseline(&baseline);
        assert_eq!(a.findings.len(), 1, "{:?}", a.findings);
        assert_eq!(a.findings[0].excerpt, "brand_new()");
        assert_eq!(a.baselined.len(), 1);
        // One unused unwrap budget + the vanished DL001 entry are stale.
        assert_eq!(stale.len(), 2);
        assert_eq!(stale[0].count, 1);
    }

    #[test]
    fn rejects_wrong_schema_and_garbage() {
        assert!(parse("{\"schema\": \"other/v9\", \"findings\": []}").is_err());
        assert!(parse("{\"findings\": []}").is_err());
        assert!(parse("not json").is_err());
        assert!(parse(
            "{\"schema\": \"detlint-baseline/v1\", \"findings\": [{\"rule\": \"DL001\"}]}"
        )
        .is_err());
    }
}
