//! # opml-detlint
//!
//! Workspace-level static-analysis suite enforcing the determinism
//! contract (DESIGN.md §7, §12). Scans every `.rs` file of the
//! workspace (excluding `target/`, the `vendor/` shims, and the
//! `tests/fixtures` lint corpus) with a comment/string-stripping
//! tokenizer and runs heuristic rule passes:
//!
//! - **DL001** — banned nondeterminism APIs: `Instant::now`,
//!   `SystemTime::now`, `thread_rng` / `rand::rng`, `from_entropy`,
//!   `RandomState`, `process::id`.
//! - **DL002** — HashMap/HashSet iteration order leaking into ordered or
//!   order-sensitive sinks (collects, pushes, folds, `.next()` picks,
//!   serialized hash-typed fields).
//! - **DL003** — rayon hazards: order-sensitive `reduce`/`fold`/`sum`
//!   over parallel iterators, `par_bridge`.
//! - **DL004** — lock-order cycles across `Mutex`/`RwLock` field
//!   acquisitions (potential deadlocks).
//! - **DL005** — malformed suppressions (missing reason, unknown rule).
//! - **DL006/DL007** — interprocedural determinism taint: functions
//!   whose return values carry hash-iteration order, and call sites
//!   where such a result flows into an order-sensitive sink
//!   ([`taint`], over the shared [`graph`] call graph).
//! - **DL008** — panic sites reachable from the simulation entry points
//!   of testbed/cohort/sched ([`panics`]).
//! - **DL009** — non-associative float reductions in shard-merge code.
//!
//! The full catalog lives in [`rules::KNOWN_RULES`]. Intentional
//! exceptions are suppressed in-source with
//! `// detlint::allow(DL00x): reason`, placed on the flagged line or the
//! line directly above it; the reason is mandatory. Findings accepted
//! wholesale are recorded in the committed `detlint.baseline.json`
//! ratchet ([`baseline`]) that the CI gate compares against.
//!
//! The `detlint` binary prints an opml-report table (or
//! `--format json|sarif`) and exits nonzero on any unsuppressed,
//! unbaselined finding; the root-package test `tests/detlint_clean.rs`
//! makes the same check part of tier-1.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use serde::Serialize;

pub mod baseline;
pub mod graph;
pub mod lexer;
pub mod locks;
pub mod panics;
pub mod rules;
pub mod taint;

/// One diagnostic produced by a rule pass.
#[derive(Debug, Clone, Serialize)]
pub struct Finding {
    /// Rule id (`DL001`…`DL005`).
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable explanation with a suggested fix.
    pub message: String,
    /// Trimmed source line (empty for file-spanning findings).
    pub excerpt: String,
}

/// A finding silenced by a `detlint::allow` directive.
#[derive(Debug, Clone, Serialize)]
pub struct SuppressedFinding {
    /// The silenced finding.
    pub finding: Finding,
    /// The justification written in the directive.
    pub reason: String,
}

/// Result of analyzing a set of sources.
#[derive(Debug, Default, Serialize)]
pub struct Analysis {
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Findings silenced by valid `detlint::allow` directives.
    pub suppressed: Vec<SuppressedFinding>,
    /// Findings accepted by the applied baseline (empty until
    /// [`Analysis::apply_baseline`] runs).
    pub baselined: Vec<Finding>,
}

impl Analysis {
    /// True when the scan is clean (no unsuppressed findings).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Render the findings as an opml-report ASCII table.
    pub fn to_table(&self) -> String {
        let mut table = opml_report::Table::new(&["rule", "location", "message"]).aligns(&[
            opml_report::table::Align::Left,
            opml_report::table::Align::Left,
            opml_report::table::Align::Left,
        ]);
        for f in &self.findings {
            table.row(&[
                f.rule.clone(),
                format!("{}:{}", f.file, f.line),
                f.message.clone(),
            ]);
        }
        table.footer(&[
            "total".to_string(),
            format!("{} files", self.files_scanned),
            format!(
                "{} findings, {} suppressed",
                self.findings.len(),
                self.suppressed.len()
            ),
        ]);
        table.render()
    }

    /// Render as JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|e| format!("{{\"error\": \"{e}\"}}"))
    }

    /// Render as a minimal SARIF 2.1.0 log (one run, rule table from
    /// [`rules::KNOWN_RULES`], one `error`-level result per finding).
    pub fn to_sarif(&self) -> String {
        use serde_json::json;
        let rules: Vec<serde_json::Value> = rules::KNOWN_RULES
            .iter()
            .map(|(id, summary)| {
                json!({
                    "id": *id,
                    "shortDescription": json!({ "text": *summary })
                })
            })
            .collect();
        let results: Vec<serde_json::Value> = self
            .findings
            .iter()
            .map(|f| {
                let location = json!({
                    "physicalLocation": json!({
                        "artifactLocation": json!({ "uri": f.file }),
                        "region": json!({ "startLine": f.line })
                    })
                });
                json!({
                    "ruleId": f.rule,
                    "level": "error",
                    "message": json!({ "text": f.message }),
                    "locations": json!([location])
                })
            })
            .collect();
        let run = json!({
            "tool": json!({
                "driver": json!({
                    "name": "detlint",
                    "informationUri": "DESIGN.md#12-static-analysis--the-determinism-ratchet",
                    "rules": rules
                })
            }),
            "results": results
        });
        let log = json!({
            "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
            "version": "2.1.0",
            "runs": json!([run])
        });
        serde_json::to_string_pretty(&log).unwrap_or_else(|e| format!("{{\"error\": \"{e}\"}}"))
    }
}

/// Analyze in-memory sources: `(path-label, source)` pairs.
///
/// This is the core entry point; [`analyze_workspace`] feeds it from the
/// filesystem and unit tests feed it fixture strings.
pub fn analyze_sources(sources: &[(String, String)]) -> Analysis {
    let lexed: Vec<(&str, &str, lexer::Lexed)> = sources
        .iter()
        .map(|(path, src)| (path.as_str(), src.as_str(), lexer::lex(src)))
        .collect();

    let mut findings = Vec::new();

    // Shared function table / call graph for the interprocedural passes.
    let graph_input: Vec<(&str, &lexer::Lexed)> =
        lexed.iter().map(|(path, _, lx)| (*path, lx)).collect();
    let call_graph = graph::CallGraph::build(&graph_input);

    // DL004 needs a whole-workspace view: fields first, then acquisitions.
    let mut lock_graph = locks::LockGraph::default();
    for (_, _, lx) in &lexed {
        lock_graph.collect_fields(lx);
    }
    for (fi, (path, _, lx)) in lexed.iter().enumerate() {
        lock_graph.collect_acquisitions(path, lx, &call_graph.files[fi].fns);
    }
    lock_graph.check(&mut findings);

    // Per-file passes.
    for (fi, (path, src, lx)) in lexed.iter().enumerate() {
        let lines: Vec<&str> = src.lines().collect();
        rules::check_file(path, lx, &call_graph.files[fi].fns, &lines, &mut findings);
    }

    // Whole-workspace passes over the call graph.
    let taint_input: Vec<(&str, &str, &lexer::Lexed)> = lexed
        .iter()
        .map(|(path, src, lx)| (*path, *src, lx))
        .collect();
    taint::check(&taint_input, &call_graph, &mut findings);
    panics::check(&taint_input, &call_graph, &mut findings);

    // Apply suppressions: a valid allow(rule) on the finding's line or the
    // line directly above silences it. DL005 (malformed suppression) is
    // itself unsuppressible.
    let allows_by_file: BTreeMap<&str, &[lexer::AllowDirective]> = lexed
        .iter()
        .map(|(path, _, lx)| (*path, lx.allows.as_slice()))
        .collect();
    let mut active = Vec::new();
    let mut suppressed = Vec::new();
    for f in findings {
        let reason = if f.rule == "DL005" {
            None
        } else {
            allows_by_file.get(f.file.as_str()).and_then(|allows| {
                allows
                    .iter()
                    .find(|a| {
                        a.rule.eq_ignore_ascii_case(&f.rule)
                            && !a.reason.is_empty()
                            && (a.line == f.line || a.line + 1 == f.line)
                    })
                    .map(|a| a.reason.clone())
            })
        };
        match reason {
            Some(reason) => suppressed.push(SuppressedFinding { finding: f, reason }),
            None => active.push(f),
        }
    }
    let key = |f: &Finding| (f.file.clone(), f.line, f.rule.clone());
    active.sort_by_key(key);
    suppressed.sort_by_key(|s| key(&s.finding));

    Analysis {
        files_scanned: sources.len(),
        findings: active,
        suppressed,
        baselined: Vec::new(),
    }
}

/// Scan the workspace rooted at `root`: every `.rs` file outside
/// `target/`, `vendor/`, `.git/`, and the detlint fixture corpus
/// (`tests/fixtures`, deliberately-dirty lint specimens).
pub fn analyze_workspace(root: &Path) -> std::io::Result<Analysis> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut sources = Vec::with_capacity(files.len());
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .display()
            .to_string();
        let src = std::fs::read_to_string(&path)?;
        sources.push((rel, src));
    }
    Ok(analyze_sources(&sources))
}

const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "node_modules"];

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // The fixture corpus holds known-bad specimens the lint
            // tests feed in deliberately; never scan it as workspace.
            let is_fixture_corpus =
                name == "fixtures" && dir.file_name().is_some_and(|d| d == "tests");
            if !SKIP_DIRS.contains(&name.as_ref()) && !is_fixture_corpus {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Ascend from `start` to the first directory whose `Cargo.toml` declares
/// a `[workspace]`; falls back to `start` itself.
pub fn find_workspace_root(start: &Path) -> PathBuf {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return start.to_path_buf();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze_one(src: &str) -> Analysis {
        analyze_sources(&[("fixture.rs".to_string(), src.to_string())])
    }

    #[test]
    fn dl001_banned_apis() {
        let a = analyze_one(
            "fn f() { let t = Instant::now(); let r = rand::rng(); let h = RandomState::new(); }",
        );
        let rules: Vec<&str> = a.findings.iter().map(|f| f.rule.as_str()).collect();
        assert_eq!(rules, ["DL001", "DL001", "DL001"]);
        assert_eq!(a.findings[0].line, 1);
    }

    #[test]
    fn dl001_not_in_strings_or_comments() {
        let a = analyze_one("fn f() { let s = \"Instant::now\"; } // thread_rng\n");
        assert!(a.is_clean(), "{:?}", a.findings);
    }

    #[test]
    fn dl002_hash_iter_into_collect() {
        let a = analyze_one(
            "use std::collections::HashMap;\nfn f(m: &HashMap<u32, f64>) -> Vec<u32> {\n    m.keys().copied().collect::<Vec<u32>>()\n}",
        );
        assert_eq!(a.findings.len(), 1, "{:?}", a.findings);
        assert_eq!(a.findings[0].rule, "DL002");
        assert_eq!(a.findings[0].line, 3);
    }

    #[test]
    fn dl002_sorted_collect_is_clean() {
        let a = analyze_one(
            "use std::collections::HashMap;\nfn f(m: &HashMap<u32, f64>) -> Vec<u32> {\n    let mut v: Vec<u32> = m.keys().copied().collect();\n    v.sort_unstable();\n    v\n}",
        );
        assert!(a.is_clean(), "{:?}", a.findings);
    }

    #[test]
    fn dl002_collect_into_btree_is_clean() {
        let a = analyze_one(
            "use std::collections::{BTreeMap, HashMap};\nfn f(m: &HashMap<u32, f64>) -> BTreeMap<u32, f64> {\n    m.iter().map(|(k, v)| (*k, *v)).collect::<BTreeMap<u32, f64>>()\n}",
        );
        assert!(a.is_clean(), "{:?}", a.findings);
    }

    #[test]
    fn dl002_next_pick_flagged() {
        let a = analyze_one(
            "use std::collections::HashMap;\nfn f(m: &HashMap<String, u32>) -> Option<u32> {\n    m.iter().filter(|(k, _)| k.starts_with(\"x\")).map(|(_, v)| *v).next()\n}",
        );
        assert_eq!(a.findings.len(), 1, "{:?}", a.findings);
        assert!(a.findings[0].message.contains("next"));
    }

    #[test]
    fn dl002_for_loop_push_flagged_and_count_clean() {
        let flagged = analyze_one(
            "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) {\n    let mut out = Vec::new();\n    for (k, v) in m.iter() {\n        out.push(*k + *v);\n    }\n}",
        );
        assert_eq!(flagged.findings.len(), 1, "{:?}", flagged.findings);
        let clean = analyze_one(
            "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) -> usize {\n    let mut n = 0usize;\n    for (_, v) in m.iter() {\n        if *v > 3 { n += 1; }\n    }\n    n\n}",
        );
        assert!(clean.is_clean(), "{:?}", clean.findings);
    }

    #[test]
    fn dl002_serialized_hash_field() {
        let a = analyze_one(
            "#[derive(Debug, Serialize)]\npub struct Report {\n    pub by_id: HashMap<u32, f64>,\n}\n",
        );
        assert_eq!(a.findings.len(), 1, "{:?}", a.findings);
        assert!(a.findings[0].message.contains("Serialize"));
        assert_eq!(a.findings[0].line, 3);
    }

    #[test]
    fn dl003_par_reduce_and_bridge() {
        let a = analyze_one(
            "fn f(v: &[f64]) -> f64 {\n    let s: f64 = v.par_iter().map(|x| x * 2.0).sum();\n    v.iter().par_bridge();\n    s\n}",
        );
        let rules: Vec<&str> = a.findings.iter().map(|f| f.rule.as_str()).collect();
        assert_eq!(rules, ["DL003", "DL003"], "{:?}", a.findings);
    }

    #[test]
    fn dl004_lock_cycle() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                   impl S {\n\
                   fn f(&self) { let _x = self.a.lock(); let _y = self.b.lock(); }\n\
                   fn g(&self) { let _y = self.b.lock(); let _x = self.a.lock(); }\n\
                   }\n";
        let a = analyze_one(src);
        assert_eq!(a.findings.len(), 1, "{:?}", a.findings);
        assert_eq!(a.findings[0].rule, "DL004");
        assert!(
            a.findings[0].message.contains("a -> b") || a.findings[0].message.contains("b -> a")
        );
    }

    #[test]
    fn dl004_consistent_order_clean() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                   impl S {\n\
                   fn f(&self) { let _x = self.a.lock(); let _y = self.b.lock(); }\n\
                   fn g(&self) { let _x = self.a.lock(); let _y = self.b.lock(); }\n\
                   }\n";
        assert!(analyze_one(src).is_clean());
    }

    #[test]
    fn suppression_with_reason_works() {
        let a = analyze_one(
            "fn f() {\n    // detlint::allow(DL001): fixture exercising the suppression path\n    let t = Instant::now();\n}",
        );
        assert!(a.is_clean(), "{:?}", a.findings);
        assert_eq!(a.suppressed.len(), 1);
        assert_eq!(
            a.suppressed[0].reason,
            "fixture exercising the suppression path"
        );
    }

    #[test]
    fn suppression_without_reason_rejected() {
        let a = analyze_one("fn f() {\n    let t = Instant::now(); // detlint::allow(DL001)\n}");
        // The DL001 stays active AND a DL005 flags the reasonless allow.
        let rules: Vec<&str> = a.findings.iter().map(|f| f.rule.as_str()).collect();
        assert_eq!(rules, ["DL001", "DL005"], "{:?}", a.findings);
    }

    #[test]
    fn suppression_unknown_rule_rejected() {
        let a = analyze_one("fn f() {} // detlint::allow(DL999): nope\n");
        assert_eq!(a.findings.len(), 1);
        assert_eq!(a.findings[0].rule, "DL005");
    }

    #[test]
    fn json_and_table_render() {
        let a = analyze_one("fn f() { let t = Instant::now(); }");
        assert!(a.to_table().contains("DL001"));
        assert!(a.to_json().contains("\"rule\": \"DL001\""));
    }
}
