//! `detlint` — command-line front end for the determinism lint pass.
//!
//! Usage:
//!
//! ```text
//! detlint [--root PATH] [--json]
//! ```
//!
//! Scans the workspace (auto-discovered by walking up to the first
//! `Cargo.toml` with a `[workspace]` section), prints the findings as an
//! ASCII table — or JSON with `--json` — and exits nonzero if any
//! unsuppressed finding remains.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("detlint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: detlint [--root PATH] [--json]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("detlint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(|| {
        let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        opml_detlint::find_workspace_root(&cwd)
    });

    let analysis = match opml_detlint::analyze_workspace(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("detlint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", analysis.to_json());
    } else if analysis.is_clean() {
        println!(
            "detlint: clean — {} files scanned, 0 findings, {} suppressed",
            analysis.files_scanned,
            analysis.suppressed.len()
        );
        for s in &analysis.suppressed {
            println!(
                "  allowed {} at {}:{} — {}",
                s.finding.rule, s.finding.file, s.finding.line, s.reason
            );
        }
    } else {
        println!("{}", analysis.to_table());
        for f in &analysis.findings {
            if !f.excerpt.is_empty() {
                println!("  {}:{}  {}", f.file, f.line, f.excerpt);
            }
        }
    }

    if analysis.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
