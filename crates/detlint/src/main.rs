//! `detlint` — command-line front end for the determinism lint suite.
//!
//! Usage:
//!
//! ```text
//! detlint [--root PATH] [--format table|json|sarif] [--json]
//!         [--baseline PATH] [--write-baseline PATH]
//! ```
//!
//! Scans the workspace (auto-discovered by walking up to the first
//! `Cargo.toml` with a `[workspace]` section) and prints the findings in
//! the chosen format (`--json` is shorthand for `--format json`).
//!
//! With `--baseline`, findings recorded in the committed baseline are
//! accepted and only *new* findings fail the run — the CI ratchet.
//! `--write-baseline` regenerates the baseline from the current scan
//! (the deliberate widening step; review the diff). Exit codes: 0 clean
//! (modulo baseline), 1 findings, 2 usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use opml_detlint::baseline::Baseline;
use opml_detlint::rules::KNOWN_RULES;

enum Format {
    Table,
    Json,
    Sarif,
}

fn print_help() {
    println!(
        "usage: detlint [--root PATH] [--format table|json|sarif] [--json]\n\
         \x20              [--baseline PATH] [--write-baseline PATH]\n\n\
         Determinism & panic-freedom lint over every workspace .rs file.\n\n\
         rules:"
    );
    for (id, summary) in KNOWN_RULES {
        println!("  {id}  {summary}");
    }
    println!(
        "\nSuppress an intentional finding in source with\n\
         `// detlint::allow(DL00x): reason` on the line or the line above;\n\
         accept a backlog wholesale via the committed baseline file."
    );
}

fn main() -> ExitCode {
    let mut format = Format::Table;
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => format = Format::Json,
            "--format" => match args.next().as_deref() {
                Some("table") => format = Format::Table,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                other => {
                    eprintln!(
                        "detlint: --format requires table|json|sarif, got {}",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("detlint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("detlint: --baseline requires a path");
                    return ExitCode::from(2);
                }
            },
            "--write-baseline" => match args.next() {
                Some(p) => write_baseline = Some(PathBuf::from(p)),
                None => {
                    eprintln!("detlint: --write-baseline requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("detlint: unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(|| {
        let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        opml_detlint::find_workspace_root(&cwd)
    });

    let mut analysis = match opml_detlint::analyze_workspace(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("detlint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = write_baseline {
        let baseline = Baseline::from_analysis(&analysis);
        let json = baseline.to_json();
        if let Err(e) = std::fs::write(&path, json + "\n") {
            eprintln!("detlint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "detlint: wrote baseline {} — {} accepted finding(s); review the diff before \
             committing",
            path.display(),
            analysis.findings.len()
        );
        return ExitCode::SUCCESS;
    }

    if let Some(path) = &baseline_path {
        let baseline = match Baseline::load(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("detlint: {e}");
                return ExitCode::from(2);
            }
        };
        let stale = analysis.apply_baseline(&baseline);
        for entry in &stale {
            eprintln!(
                "detlint: stale baseline entry ({} at {} x{}): `{}` — tighten the ratchet",
                entry.rule, entry.file, entry.count, entry.excerpt
            );
        }
    }

    match format {
        Format::Json => println!("{}", analysis.to_json()),
        Format::Sarif => println!("{}", analysis.to_sarif()),
        Format::Table => {
            if analysis.is_clean() {
                println!(
                    "detlint: clean — {} files scanned, 0 new findings, {} suppressed, {} baselined",
                    analysis.files_scanned,
                    analysis.suppressed.len(),
                    analysis.baselined.len()
                );
                for s in &analysis.suppressed {
                    println!(
                        "  allowed {} at {}:{} — {}",
                        s.finding.rule, s.finding.file, s.finding.line, s.reason
                    );
                }
            } else {
                println!("{}", analysis.to_table());
                for f in &analysis.findings {
                    if !f.excerpt.is_empty() {
                        println!("  {}:{}  {}", f.file, f.line, f.excerpt);
                    }
                }
            }
        }
    }

    if analysis.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
