//! Whole-workspace function discovery and call graph.
//!
//! PR 1's DL004 lock pass was the first rule to need more than one file
//! of context; it carried its own ad-hoc `fn`-body scanner. This module
//! generalizes that infrastructure so every interprocedural pass (DL004
//! lock orders, DL006/DL007 determinism taint, DL008 panic reachability)
//! shares one definition of "a function" and one call-site extractor.
//!
//! Resolution is name-based and deliberately overapproximate: a call
//! `foo(…)` or `x.foo(…)` is linked to *every* workspace function named
//! `foo`. For a lint that is the right bias — an extra edge can at worst
//! ask for one more `detlint::allow` annotation, while a missed edge
//! silently hides a panic or a hash-order leak from the ratchet.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Lexed, Token, TokenKind};

/// Identifier-like tokens that can precede `(` or `[` without being a
/// call head / indexed place expression.
const NON_CALLEE: &[&str] = &[
    "if", "match", "while", "for", "loop", "return", "fn", "let", "move", "as", "in", "unsafe",
    "ref", "mut", "impl", "where", "pub", "use", "mod", "struct", "enum", "trait", "type", "const",
    "static", "else", "break", "continue", "dyn", "await", "Some", "None", "Ok", "Err", "self",
    "Self", "super", "crate",
];

/// True for tokens that cannot be a user-defined callee name.
pub(crate) fn is_non_callee(text: &str) -> bool {
    NON_CALLEE.contains(&text)
}

/// One function body located in a token stream.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// Function name (the identifier after `fn`).
    pub name: String,
    /// Index of the `fn` keyword (signature start).
    pub fn_kw: usize,
    /// Index of the opening `{` of the body.
    pub open: usize,
    /// Index of the matching `}`.
    pub close: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// True when the function sits inside a `#[cfg(test)]` item or is
    /// itself marked `#[test]` / `#[bench]`.
    pub is_test: bool,
}

/// Index of the `}` matching the `{` at `open`.
pub(crate) fn match_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

/// Index of the `]` matching the `[` at `open`.
pub(crate) fn match_bracket(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

/// Token ranges (inclusive) covered by test-only code: the brace body of
/// any item carrying `#[cfg(test)]` / `#[test]` / `#[bench]`.
fn test_spans(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut out: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].text == "#" && toks[i + 1].text == "[" {
            let close_attr = match_bracket(toks, i + 1);
            let inner = &toks[i + 2..close_attr];
            let is_test_attr = match inner.first().map(|t| t.text.as_str()) {
                Some("cfg") => inner.iter().any(|t| t.text == "test"),
                Some("test") | Some("bench") => true,
                _ => false,
            };
            if is_test_attr {
                // Attach to the next item: skip further attributes, then
                // take the first `{` before a `;` as the item body.
                let mut j = close_attr + 1;
                while j + 1 < toks.len() && toks[j].text == "#" && toks[j + 1].text == "[" {
                    j = match_bracket(toks, j + 1) + 1;
                }
                let mut k = j;
                while k < toks.len() {
                    match toks[k].text.as_str() {
                        "{" => {
                            out.push((k, match_brace(toks, k)));
                            break;
                        }
                        ";" => break,
                        _ => k += 1,
                    }
                }
            }
            i = close_attr + 1;
            continue;
        }
        i += 1;
    }
    out
}

/// Discover every `fn` body in the stream, with its name and whether it
/// lives in test-only code. Nested functions are rediscovered with their
/// own (smaller) spans, which downstream passes tolerate.
pub fn find_functions(toks: &[Token]) -> Vec<FnSpan> {
    let tests = test_spans(toks);
    let in_test = |at: usize| tests.iter().any(|&(a, b)| a <= at && at <= b);
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "fn" && toks.get(i + 1).map(|t| t.kind) == Some(TokenKind::Ident) {
            // Find the body `{`: first brace at paren depth 0; a `;`
            // first means a bodyless trait/extern declaration.
            let mut paren = 0i32;
            let mut j = i + 2;
            let mut open = None;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    "{" if paren == 0 => {
                        open = Some(j);
                        break;
                    }
                    ";" if paren == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if let Some(open) = open {
                out.push(FnSpan {
                    name: toks[i + 1].text.clone(),
                    fn_kw: i,
                    open,
                    close: match_brace(toks, open),
                    line: toks[i].line,
                    is_test: in_test(i),
                });
            }
        }
        i += 1;
    }
    out
}

/// Callee names referenced inside `toks[open..=close]`: every
/// non-keyword identifier directly followed by `(` (free calls, method
/// calls, and path calls all end in that shape).
pub fn callees(toks: &[Token], open: usize, close: usize) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for k in open..close.min(toks.len().saturating_sub(1)) {
        if toks[k].kind == TokenKind::Ident
            && !is_non_callee(&toks[k].text)
            && toks.get(k + 1).map(|t| t.text.as_str()) == Some("(")
        {
            out.insert(toks[k].text.clone());
        }
    }
    out
}

/// Functions of one file, in source order.
pub struct FileFns {
    /// Workspace-relative path label.
    pub path: String,
    /// Discovered function spans.
    pub fns: Vec<FnSpan>,
}

/// A function id: (file index, index into that file's `fns`).
pub type FnId = (usize, usize);

/// Whole-workspace call graph with name-based resolution.
pub struct CallGraph {
    /// Per-file function tables, parallel to the analyzed source list.
    pub files: Vec<FileFns>,
    /// Name → every declaration carrying it.
    pub by_name: BTreeMap<String, Vec<FnId>>,
    /// Per-declaration callee-name sets.
    pub calls: BTreeMap<FnId, BTreeSet<String>>,
}

impl CallGraph {
    /// Build the graph over `(path, lexed)` pairs, in input order.
    pub fn build(sources: &[(&str, &Lexed)]) -> CallGraph {
        let mut files = Vec::with_capacity(sources.len());
        let mut by_name: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut calls = BTreeMap::new();
        for (fi, (path, lexed)) in sources.iter().enumerate() {
            let fns = find_functions(&lexed.tokens);
            for (gi, f) in fns.iter().enumerate() {
                by_name.entry(f.name.clone()).or_default().push((fi, gi));
                calls.insert((fi, gi), callees(&lexed.tokens, f.open, f.close));
            }
            files.push(FileFns {
                path: path.to_string(),
                fns,
            });
        }
        CallGraph {
            files,
            by_name,
            calls,
        }
    }

    /// The span behind a function id.
    pub fn span(&self, id: FnId) -> &FnSpan {
        &self.files[id.0].fns[id.1]
    }

    /// BFS over call edges from every non-test declaration whose name is
    /// in `roots`. Returns each reached function mapped to the root name
    /// it was first reached from (roots map to themselves). Test-only
    /// declarations are neither roots nor traversal targets.
    pub fn reachable_from(&self, roots: &[&str]) -> BTreeMap<FnId, String> {
        let mut reached: BTreeMap<FnId, String> = BTreeMap::new();
        let mut queue: Vec<FnId> = Vec::new();
        for root in roots {
            if let Some(ids) = self.by_name.get(*root) {
                for &id in ids {
                    if !self.span(id).is_test && !reached.contains_key(&id) {
                        reached.insert(id, (*root).to_string());
                        queue.push(id);
                    }
                }
            }
        }
        while let Some(id) = queue.pop() {
            let via = reached[&id].clone();
            if let Some(callees) = self.calls.get(&id) {
                for name in callees {
                    if let Some(ids) = self.by_name.get(name) {
                        for &next in ids {
                            if !self.span(next).is_test && !reached.contains_key(&next) {
                                reached.insert(next, via.clone());
                                queue.push(next);
                            }
                        }
                    }
                }
            }
        }
        reached
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn finds_named_functions_and_test_spans() {
        let src = "fn alpha() { beta(); }\n\
                   fn beta() {}\n\
                   #[cfg(test)]\nmod tests {\n    fn helper() {}\n    #[test]\n    fn case() { helper(); }\n}\n";
        let lexed = lex(src);
        let fns = find_functions(&lexed.tokens);
        let names: Vec<(&str, bool)> = fns.iter().map(|f| (f.name.as_str(), f.is_test)).collect();
        assert_eq!(
            names,
            [
                ("alpha", false),
                ("beta", false),
                ("helper", true),
                ("case", true)
            ]
        );
    }

    #[test]
    fn callees_skip_keywords_and_constructors() {
        let lexed = lex("fn f(x: u32) { if cond(x) { return Some(g(x)); } for _ in it(x) {} }");
        let fns = find_functions(&lexed.tokens);
        let c = callees(&lexed.tokens, fns[0].open, fns[0].close);
        let names: Vec<&str> = c.iter().map(String::as_str).collect();
        assert_eq!(names, ["cond", "g", "it"]);
    }

    #[test]
    fn reachability_crosses_files_and_skips_tests() {
        let a = lex("pub fn entry() { helper(); }");
        let b = lex("pub fn helper() { leaf(); }\npub fn leaf() {}\npub fn orphan() {}\n#[cfg(test)]\nmod t { fn leaf() {} }");
        let graph = CallGraph::build(&[("a.rs", &a), ("b.rs", &b)]);
        let reached = graph.reachable_from(&["entry"]);
        let names: BTreeSet<&str> = reached
            .keys()
            .map(|&id| graph.span(id).name.as_str())
            .collect();
        assert!(names.contains("helper") && names.contains("leaf"));
        assert!(!names.contains("orphan"));
        // The cfg(test) `leaf` shadow is not traversed.
        assert_eq!(reached.len(), 3, "{names:?}");
        assert!(reached.values().all(|root| root == "entry"));
    }
}
