//! DL004: lock-order graph analysis.
//!
//! Pass 1 collects every struct field whose type mentions `Mutex` or
//! `RwLock` (std or parking_lot, possibly behind `Arc`). Pass 2 records,
//! per function, the order in which those fields are acquired
//! (`.lock()` / `.read()` / `.write()`). Each ordered pair within one
//! function becomes an edge `a -> b` ("a is held while b is taken" —
//! approximated, since guard drops are not tracked). A cycle in the
//! resulting graph is a potential deadlock: two functions that take the
//! same locks in opposite orders can each hold one and wait forever on
//! the other.
//!
//! Names are matched per field identifier across the whole workspace;
//! witnesses (file, function) are attached to every edge so a reported
//! cycle can be audited by hand.

use std::collections::{BTreeMap, BTreeSet};

use crate::graph::FnSpan;
use crate::lexer::{Lexed, TokenKind};
use crate::rules::for_each_struct_field;
use crate::Finding;

/// Where an edge was observed.
#[derive(Debug, Clone)]
struct EdgeWitness {
    file: String,
    function: String,
    line: u32,
}

/// Accumulated lock-order state across the workspace.
#[derive(Debug, Default)]
pub struct LockGraph {
    /// Field names with lock-bearing types.
    fields: BTreeSet<String>,
    /// `a -> b` edges with their first witness.
    edges: BTreeMap<(String, String), EdgeWitness>,
}

impl LockGraph {
    /// Pass 1: harvest lock-typed field names from one file.
    pub fn collect_fields(&mut self, lexed: &Lexed) {
        for_each_struct_field(&lexed.tokens, |field, ty| {
            if ty.iter().any(|t| t == "Mutex" || t == "RwLock") {
                self.fields.insert(field.to_string());
            }
        });
    }

    /// Pass 2: record per-function acquisition orders from one file,
    /// using the shared [`crate::graph`] function table. Nested fns
    /// appear twice (their edges are a subset, deduplicated by the map).
    pub fn collect_acquisitions(&mut self, file: &str, lexed: &Lexed, fns: &[FnSpan]) {
        if self.fields.is_empty() {
            return;
        }
        for f in fns {
            self.scan_body(file, &f.name, lexed, f.open, f.close);
        }
    }

    fn scan_body(&mut self, file: &str, function: &str, lexed: &Lexed, open: usize, close: usize) {
        let toks = &lexed.tokens;
        let mut acquired: Vec<(String, u32)> = Vec::new();
        let mut k = open;
        while k + 2 <= close {
            // `field.lock(` / `field.read(` / `field.write(`
            if toks[k].kind == TokenKind::Ident
                && self.fields.contains(&toks[k].text)
                && toks.get(k + 1).map(|t| t.text.as_str()) == Some(".")
                && toks
                    .get(k + 2)
                    .is_some_and(|t| matches!(t.text.as_str(), "lock" | "read" | "write"))
                && toks.get(k + 3).map(|t| t.text.as_str()) == Some("(")
            {
                acquired.push((toks[k].text.clone(), toks[k].line));
                k += 4;
                continue;
            }
            k += 1;
        }
        for a in 0..acquired.len() {
            for b in (a + 1)..acquired.len() {
                let (ref la, _) = acquired[a];
                let (ref lb, line_b) = acquired[b];
                if la != lb {
                    self.edges
                        .entry((la.clone(), lb.clone()))
                        .or_insert_with(|| EdgeWitness {
                            file: file.to_string(),
                            function: function.to_string(),
                            line: line_b,
                        });
                }
            }
        }
    }

    /// Cycle detection; one finding per distinct cycle.
    pub fn check(&self, findings: &mut Vec<Finding>) {
        let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (a, b) in self.edges.keys() {
            adj.entry(a.as_str()).or_default().push(b.as_str());
        }
        // Iterative DFS with tri-color marking; back edges close cycles.
        let mut color: BTreeMap<&str, u8> = BTreeMap::new(); // 0 white, 1 grey, 2 black
        let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
        let nodes: Vec<&str> = adj.keys().copied().collect();
        for &start in &nodes {
            if color.get(start).copied().unwrap_or(0) != 0 {
                continue;
            }
            let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
            let mut path: Vec<&str> = vec![start];
            color.insert(start, 1);
            while let Some(&(node, next)) = stack.last() {
                let succs = adj.get(node).map(Vec::as_slice).unwrap_or(&[]);
                if next < succs.len() {
                    stack.last_mut().expect("stack is non-empty").1 += 1;
                    let succ = succs[next];
                    match color.get(succ).copied().unwrap_or(0) {
                        0 => {
                            color.insert(succ, 1);
                            stack.push((succ, 0));
                            path.push(succ);
                        }
                        1 => {
                            // Back edge: the cycle is path[pos..] + succ.
                            if let Some(pos) = path.iter().position(|&n| n == succ) {
                                let cycle: Vec<String> =
                                    path[pos..].iter().map(|s| s.to_string()).collect();
                                let canon = canonical_rotation(&cycle);
                                if reported.insert(canon.clone()) {
                                    findings.push(self.cycle_finding(&cycle));
                                }
                            }
                        }
                        _ => {}
                    }
                } else {
                    color.insert(node, 2);
                    stack.pop();
                    path.pop();
                }
            }
        }
    }

    fn cycle_finding(&self, cycle: &[String]) -> Finding {
        // Describe the cycle a -> b -> … -> a with the witness function
        // for each edge.
        let mut legs = Vec::new();
        let mut first_witness: Option<&EdgeWitness> = None;
        for i in 0..cycle.len() {
            let a = &cycle[i];
            let b = &cycle[(i + 1) % cycle.len()];
            if let Some(w) = self.edges.get(&(a.clone(), b.clone())) {
                legs.push(format!("{a}->{b} in {}::{}", w.file, w.function));
                if first_witness.is_none() {
                    first_witness = Some(w);
                }
            }
        }
        let (file, line) = first_witness
            .map(|w| (w.file.clone(), w.line))
            .unwrap_or_default();
        Finding {
            rule: "DL004".to_string(),
            file,
            line,
            message: format!(
                "lock-order cycle ({}); functions acquire these locks in conflicting orders \
                 and can deadlock: {}",
                cycle.join(" -> "),
                legs.join("; ")
            ),
            excerpt: String::new(),
        }
    }
}

/// Rotate a cycle so its lexicographically smallest node comes first,
/// giving a canonical key for deduplication.
fn canonical_rotation(cycle: &[String]) -> Vec<String> {
    let min_pos = cycle
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut out = Vec::with_capacity(cycle.len());
    out.extend_from_slice(&cycle[min_pos..]);
    out.extend_from_slice(&cycle[..min_pos]);
    out
}
