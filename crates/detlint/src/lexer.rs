//! A comment- and string-stripping tokenizer for Rust source.
//!
//! The lexer produces a flat token stream (identifiers, literals,
//! punctuation with `::` fused) annotated with 1-based line numbers, plus
//! the list of `// detlint::allow(rule-id): reason` suppression
//! directives found in comments. String and char literal *contents* are
//! discarded so rule passes never match inside text; comments are
//! discarded except for suppression directives.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (string/char literals are dropped entirely).
    Literal,
    /// Punctuation; `::` is fused into a single token.
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token kind.
    pub kind: TokenKind,
    /// Source text (empty for stripped literals).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

/// A `// detlint::allow(rule): reason` directive found in a comment.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// 1-based line the directive comment sits on.
    pub line: u32,
    /// Rule id as written (e.g. `DL002`), not yet validated.
    pub rule: String,
    /// Free-text justification after the colon; empty if omitted.
    pub reason: String,
}

/// Result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Token stream with comments/strings stripped.
    pub tokens: Vec<Token>,
    /// Suppression directives harvested from comments.
    pub allows: Vec<AllowDirective>,
}

/// Tokenize `source`, stripping comments and literal contents.
pub fn lex(source: &str) -> Lexed {
    let bytes: Vec<char> = source.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = bytes.len();

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident_cont = |c: char| c.is_alphanumeric() || c == '_';

    while i < n {
        let c = bytes[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (and suppression directives).
        if c == '/' && i + 1 < n && bytes[i + 1] == '/' {
            let start = i + 2;
            let mut j = start;
            while j < n && bytes[j] != '\n' {
                j += 1;
            }
            let text: String = bytes[start..j].iter().collect();
            if let Some(dir) = parse_allow(&text, line) {
                out.allows.push(dir);
            }
            i = j;
            continue;
        }
        // Block comment (Rust block comments nest).
        if c == '/' && i + 1 < n && bytes[i + 1] == '*' {
            let mut depth = 1;
            let mut j = i + 2;
            while j < n && depth > 0 {
                if bytes[j] == '\n' {
                    line += 1;
                    j += 1;
                } else if bytes[j] == '/' && j + 1 < n && bytes[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if bytes[j] == '*' && j + 1 < n && bytes[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            i = j;
            continue;
        }
        // Identifier — with raw-string / byte-string prefix detection.
        if is_ident_start(c) {
            let start = i;
            let mut j = i;
            while j < n && is_ident_cont(bytes[j]) {
                j += 1;
            }
            let ident: String = bytes[start..j].iter().collect();
            // r"...", r#"..."#, b"...", br#"..."# — the ident was a
            // literal prefix, not an identifier.
            if (ident == "r" || ident == "b" || ident == "br") && j < n {
                if bytes[j] == '"' {
                    i = if ident == "b" {
                        skip_string(&bytes, j, &mut line)
                    } else {
                        skip_raw_string(&bytes, j, 0, &mut line)
                    };
                    continue;
                }
                if bytes[j] == '#' && ident != "b" {
                    let mut hashes = 0usize;
                    let mut k = j;
                    while k < n && bytes[k] == '#' {
                        hashes += 1;
                        k += 1;
                    }
                    if k < n && bytes[k] == '"' {
                        i = skip_raw_string(&bytes, k, hashes, &mut line);
                        continue;
                    }
                    // r#ident raw identifier: emit the ident without `r#`.
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text: ident,
                line,
            });
            i = j;
            continue;
        }
        // Numeric literal: digits plus alphanumeric suffix chars; a `.`
        // continues the literal only when followed by a digit (so `1..n`
        // and `x.0.iter()` tokenize usefully).
        if c.is_ascii_digit() {
            let start = i;
            let mut j = i;
            while j < n {
                let ch = bytes[j];
                let continues = ch.is_alphanumeric()
                    || ch == '_'
                    || (ch == '.' && j + 1 < n && bytes[j + 1].is_ascii_digit());
                if !continues {
                    break;
                }
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Literal,
                text: bytes[start..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // String literal: strip contents.
        if c == '"' {
            i = skip_string(&bytes, i, &mut line);
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            if i + 1 < n && (is_ident_start(bytes[i + 1])) && !(i + 2 < n && bytes[i + 2] == '\'') {
                // Lifetime: skip the quote and the ident.
                let mut j = i + 1;
                while j < n && is_ident_cont(bytes[j]) {
                    j += 1;
                }
                i = j;
            } else {
                // Char literal: skip to the closing quote.
                let mut j = i + 1;
                while j < n && bytes[j] != '\'' {
                    if bytes[j] == '\\' {
                        j += 1;
                    }
                    j += 1;
                }
                i = (j + 1).min(n);
            }
            continue;
        }
        // Punctuation; fuse `::`.
        if c == ':' && i + 1 < n && bytes[i + 1] == ':' {
            out.tokens.push(Token {
                kind: TokenKind::Punct,
                text: "::".into(),
                line,
            });
            i += 2;
            continue;
        }
        out.tokens.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

/// Skip a normal (escaped) string literal starting at the opening quote;
/// returns the index just past the closing quote.
fn skip_string(bytes: &[char], open: usize, line: &mut u32) -> usize {
    let n = bytes.len();
    let mut j = open + 1;
    while j < n {
        match bytes[j] {
            '\\' => {
                // An escaped character may itself be the newline of a
                // `\`-continued string; the line count must still advance.
                if j + 1 < n && bytes[j + 1] == '\n' {
                    *line += 1;
                }
                j += 2;
            }
            '\n' => {
                *line += 1;
                j += 1;
            }
            '"' => return j + 1,
            _ => j += 1,
        }
    }
    n
}

/// Skip a raw string literal whose opening quote is at `open` preceded by
/// `hashes` `#` characters; returns the index just past the terminator.
fn skip_raw_string(bytes: &[char], open: usize, hashes: usize, line: &mut u32) -> usize {
    let n = bytes.len();
    let mut j = open + 1;
    while j < n {
        if bytes[j] == '\n' {
            *line += 1;
            j += 1;
            continue;
        }
        if bytes[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < n && seen < hashes && bytes[k] == '#' {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return k;
            }
        }
        j += 1;
    }
    n
}

/// Parse `detlint::allow(rule): reason` out of a line-comment body.
fn parse_allow(comment: &str, line: u32) -> Option<AllowDirective> {
    let trimmed = comment.trim();
    let rest = trimmed.strip_prefix("detlint::allow(")?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let after = &rest[close + 1..];
    let reason = after
        .strip_prefix(':')
        .map(str::trim)
        .unwrap_or("")
        .to_string();
    Some(AllowDirective { line, rule, reason })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_and_strings() {
        let src = "let x = \"Instant::now\"; // trailing\n/* block\nInstant */ let y = 1;";
        let lexed = lex(src);
        let texts: Vec<&str> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["let", "x", "=", ";", "let", "y", "=", "1", ";"]);
        assert_eq!(lexed.tokens.last().unwrap().line, 3);
    }

    #[test]
    fn fuses_path_separator_and_keeps_lines() {
        let lexed = lex("a::b\nc");
        let texts: Vec<&str> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["a", "::", "b", "c"]);
        assert_eq!(lexed.tokens[3].line, 2);
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let src = "fn f<'a>(s: &'a str) { let r = r#\"Instant::now()\"#; let c = 'x'; }";
        let lexed = lex(src);
        assert!(!lexed.tokens.iter().any(|t| t.text == "Instant"));
        assert!(lexed.tokens.iter().any(|t| t.text == "str"));
    }

    #[test]
    fn raw_string_hash_variants() {
        // Zero, one, and two hashes; inner quotes and hashes must not
        // terminate early, and nothing inside may tokenize.
        let src = "let a = r\"Instant::now\";\nlet b = r#\"say \"thread_rng\" now\"#;\nlet c = r##\"nested \"# quote\"##;\nlet d = 9;";
        let lexed = lex(src);
        assert!(!lexed.tokens.iter().any(|t| t.text == "Instant"
            || t.text == "thread_rng"
            || t.text == "say"
            || t.text == "nested"));
        let d = lexed
            .tokens
            .iter()
            .find(|t| t.text == "d")
            .expect("d survives");
        assert_eq!(d.line, 4, "raw-string line accounting");
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = "let a = b\"RandomState\"; let b2 = br#\"from_entropy\"#; let c = b'x'; done();";
        let lexed = lex(src);
        assert!(!lexed
            .tokens
            .iter()
            .any(|t| t.text == "RandomState" || t.text == "from_entropy" || t.text == "x"));
        assert!(lexed.tokens.iter().any(|t| t.text == "done"));
    }

    #[test]
    fn multiline_raw_string_counts_lines() {
        let src = "let a = r#\"line\nline\nInstant::now()\n\"#;\nlet tail = 1;";
        let lexed = lex(src);
        assert!(!lexed.tokens.iter().any(|t| t.text == "Instant"));
        let tail = lexed
            .tokens
            .iter()
            .find(|t| t.text == "tail")
            .expect("tail");
        assert_eq!(tail.line, 5);
    }

    #[test]
    fn nested_block_comments_strip_and_count_lines() {
        let src = "/* outer /* inner Instant::now() */\nstill comment */ let x = 1;\n/*/* deep */*/ let y = 2;";
        let lexed = lex(src);
        let texts: Vec<&str> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            ["let", "x", "=", "1", ";", "let", "y", "=", "2", ";"]
        );
        assert_eq!(lexed.tokens[0].line, 2);
        assert_eq!(lexed.tokens[5].line, 3);
    }

    #[test]
    fn doc_lines_with_code_like_text_are_inert() {
        // `//!` and `///` doc lines are comments: code-like text must not
        // tokenize, and a directive written in docs must not suppress.
        let src = "//! let t = Instant::now();\n//! detlint::allow(DL001): documented, not active\n/// thread_rng() in a doc sentence\nfn f() {}\n";
        let lexed = lex(src);
        assert!(!lexed
            .tokens
            .iter()
            .any(|t| t.text == "Instant" || t.text == "thread_rng"));
        assert!(
            lexed.allows.is_empty(),
            "doc-comment directives must be inert: {:?}",
            lexed.allows
        );
    }

    #[test]
    fn escaped_newline_in_string_counts_lines() {
        let src = "let s = \"continued \\\nrest\";\nlet marker = 1;";
        let lexed = lex(src);
        let marker = lexed
            .tokens
            .iter()
            .find(|t| t.text == "marker")
            .expect("marker");
        assert_eq!(marker.line, 3, "escaped newline inside string literal");
    }

    #[test]
    fn parses_allow_directive() {
        let src = "foo(); // detlint::allow(DL002): keys feed an order-insensitive count\nbar(); // detlint::allow(DL001)\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 2);
        assert_eq!(lexed.allows[0].rule, "DL002");
        assert_eq!(
            lexed.allows[0].reason,
            "keys feed an order-insensitive count"
        );
        assert_eq!(lexed.allows[0].line, 1);
        assert_eq!(lexed.allows[1].rule, "DL001");
        assert_eq!(lexed.allows[1].reason, "");
    }
}
