//! DL006/DL007: interprocedural determinism taint.
//!
//! Intra-function DL002 catches a hash-table iteration that reaches an
//! order-sensitive sink *inside one function*. It provably misses the
//! same leak split across a call: a helper returning
//! `impl Iterator<Item = …>` over a `HashMap` is clean under DL002 (no
//! order-sensitive terminal in the helper; no hash source in the
//! caller). This pass closes that hole:
//!
//! - **DL006 (taint source):** a function whose *return value* carries
//!   hash-iteration order — its declared return type is an iterator
//!   (`impl Iterator`, or a hash-table iterator type like `Keys`/
//!   `Drain`) and its body iterates a hash container; or, transitively,
//!   an iterator-returning function that calls another tainted function.
//! - **DL007 (taint sink via call):** a call site whose result flows
//!   into one of the DL002 ordered/order-sensitive sinks — a method
//!   chain ending in `collect`/`fold`/`next`/… or a `for`-loop body
//!   that accumulates in order.
//!
//! Call resolution is name-based (see [`crate::graph`]); to keep false
//! positives in check, a call is only treated as tainted when *every*
//! workspace function of that name is tainted. Taint through a binding
//! (`let xs = helper(); for x in xs {…}`) is not tracked — the chain or
//! loop must consume the call directly.

use std::collections::{BTreeMap, BTreeSet};

use crate::graph::{match_brace, CallGraph, FnId};
use crate::lexer::{Lexed, Token, TokenKind};
use crate::rules::{self, HASH_ITER_METHODS};
use crate::Finding;

/// Return-position types whose values iterate hash tables.
const HASH_ITER_TYPES: &[&str] = &[
    "Keys",
    "Values",
    "ValuesMut",
    "IntoKeys",
    "IntoValues",
    "Drain",
    "ExtractIf",
];

/// How a function became a taint source.
enum Cause {
    /// Body iterates a hash container into the returned iterator.
    Direct,
    /// Returns the result of calling another tainted function.
    ViaCall(String),
}

/// Run the taint analysis over the whole workspace and append DL006 and
/// DL007 findings. `sources` must parallel the graph's file table.
pub fn check(sources: &[(&str, &str, &Lexed)], graph: &CallGraph, findings: &mut Vec<Finding>) {
    // Line tables for excerpts.
    let line_tables: Vec<Vec<&str>> = sources
        .iter()
        .map(|(_, src, _)| src.lines().collect())
        .collect();

    // Hash-typed struct fields are matched by name across the workspace,
    // the same union the DL004 pass uses for lock fields.
    let mut hash_fields: BTreeSet<String> = BTreeSet::new();
    for (_, _, lexed) in sources {
        hash_fields.extend(rules::collect_hash_fields(&lexed.tokens));
    }

    // Pass 1: classify direct taint sources.
    let mut tainted: BTreeMap<FnId, Cause> = BTreeMap::new();
    for (fi, (_, _, lexed)) in sources.iter().enumerate() {
        let toks = &lexed.tokens;
        for (gi, span) in graph.files[fi].fns.iter().enumerate() {
            if !returns_iterator(toks, span.fn_kw, span.open) {
                continue;
            }
            let hash_names = rules::collect_hash_bindings(toks, span);
            let body = &toks[span.open..=span.close];
            let iterates_hash = (0..body.len()).any(|at| {
                rules::hash_expr_head(body, at, &hash_names, &hash_fields).is_some_and(|dot| {
                    body.get(dot + 1)
                        .is_some_and(|m| HASH_ITER_METHODS.contains(&m.text.as_str()))
                        && body.get(dot + 2).map(|t| t.text.as_str()) == Some("(")
                })
            });
            if iterates_hash {
                tainted.insert((fi, gi), Cause::Direct);
            }
        }
    }

    // Pass 2: propagate through iterator-returning callers to a fixed
    // point. `tainted_name` requires every declaration of the name to be
    // tainted, so common names (`iter`, `new`) never taint by accident.
    loop {
        let tainted_names = all_tainted_names(graph, &tainted);
        let mut grew = false;
        for (fi, (_, _, lexed)) in sources.iter().enumerate() {
            for (gi, span) in graph.files[fi].fns.iter().enumerate() {
                let id = (fi, gi);
                if tainted.contains_key(&id)
                    || !returns_iterator(&lexed.tokens, span.fn_kw, span.open)
                {
                    continue;
                }
                if let Some(callee) = graph
                    .calls
                    .get(&id)
                    .and_then(|calls| calls.iter().find(|c| tainted_names.contains(c.as_str())))
                {
                    tainted.insert(id, Cause::ViaCall(callee.clone()));
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }

    // DL006 findings, one per tainted declaration.
    for (&(fi, gi), cause) in &tainted {
        let span = &graph.files[fi].fns[gi];
        let (path, _, _) = sources[fi];
        let how = match cause {
            Cause::Direct => "iterates a HashMap/HashSet into its returned iterator".to_string(),
            Cause::ViaCall(callee) => {
                format!("returns the result of tainted function `{callee}`")
            }
        };
        findings.push(Finding {
            rule: "DL006".to_string(),
            file: path.to_string(),
            line: span.line,
            message: format!(
                "`{}` {how}; callers inherit nondeterministic hash order — return a sorted \
                 collection (or document why every caller is order-insensitive)",
                span.name
            ),
            excerpt: excerpt_at(&line_tables[fi], span.line),
        });
    }

    // Pass 3: DL007 — tainted calls feeding order-sensitive sinks.
    let tainted_names = all_tainted_names(graph, &tainted);
    if tainted_names.is_empty() {
        return;
    }
    for (fi, (path, _, lexed)) in sources.iter().enumerate() {
        let toks = &lexed.tokens;
        for span in &graph.files[fi].fns {
            let body = &toks[span.open..=span.close];
            let mut i = 0;
            while i < body.len() {
                // `for pat in tainted(...) { body }`
                if body[i].text == "for" {
                    if let Some((iter_end, body_open)) = rules::for_loop_shape(body, i) {
                        if let Some(name) = tainted_call_in(body, i, iter_end, &tainted_names) {
                            let close = match_brace(body, body_open);
                            if let Some(sink) =
                                rules::order_sensitive_loop_body(body, body_open, close, span, toks)
                            {
                                findings.push(Finding {
                                    rule: "DL007".to_string(),
                                    file: path.to_string(),
                                    line: body[i].line,
                                    message: format!(
                                        "for-loop over tainted call `{name}(…)` (DL006 source) \
                                         feeds {sink}; sort the items before accumulating"
                                    ),
                                    excerpt: excerpt_at(&line_tables[fi], body[i].line),
                                });
                            }
                            i = body_open;
                            continue;
                        }
                    }
                }
                // `tainted(...).chain()...` — the call heads a method chain.
                if body[i].kind == TokenKind::Ident
                    && tainted_names.contains(body[i].text.as_str())
                    && body.get(i + 1).map(|t| t.text.as_str()) == Some("(")
                {
                    if let Some(msg) = rules::classify_chain(body, i + 1, span, toks) {
                        findings.push(Finding {
                            rule: "DL007".to_string(),
                            file: path.to_string(),
                            line: body[i].line,
                            message: format!(
                                "result of tainted call `{}(…)` (DL006 source) {msg}",
                                body[i].text
                            ),
                            excerpt: excerpt_at(&line_tables[fi], body[i].line),
                        });
                    }
                    i += 2;
                    continue;
                }
                i += 1;
            }
        }
    }
}

/// Names for which *every* declaration in the workspace is tainted.
fn all_tainted_names(graph: &CallGraph, tainted: &BTreeMap<FnId, Cause>) -> BTreeSet<String> {
    graph
        .by_name
        .iter()
        .filter(|(_, ids)| !ids.is_empty() && ids.iter().all(|id| tainted.contains_key(id)))
        .map(|(name, _)| name.clone())
        .collect()
}

/// True when the declared return type (between `->` and the body `{`)
/// is iterator-shaped: `impl Iterator…` or a hash-table iterator type.
fn returns_iterator(toks: &[Token], fn_kw: usize, open: usize) -> bool {
    let sig = &toks[fn_kw..open];
    let Some(arrow) = sig
        .windows(2)
        .position(|w| w[0].text == "-" && w[1].text == ">")
    else {
        return false;
    };
    let ret = &sig[arrow + 2..];
    let impl_iter = ret
        .windows(2)
        .any(|w| w[0].text == "impl" && w[1].text == "Iterator");
    impl_iter
        || ret
            .iter()
            .any(|t| HASH_ITER_TYPES.contains(&t.text.as_str()))
}

/// First tainted call name inside `body[from..to]`, if any.
fn tainted_call_in(
    body: &[Token],
    from: usize,
    to: usize,
    tainted_names: &BTreeSet<String>,
) -> Option<String> {
    (from..to.min(body.len().saturating_sub(1))).find_map(|k| {
        (body[k].kind == TokenKind::Ident
            && tainted_names.contains(body[k].text.as_str())
            && body.get(k + 1).map(|t| t.text.as_str()) == Some("("))
        .then(|| body[k].text.clone())
    })
}

fn excerpt_at(lines: &[&str], line: u32) -> String {
    rules::excerpt(lines, line)
}
