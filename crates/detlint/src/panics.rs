//! DL008: panic-freedom along the simulation path.
//!
//! PR 3 promised a panic-free typed-error failure path through testbed,
//! cohort, and sched; this pass machine-enforces it. Starting from the
//! simulation entry points ([`PANIC_ROOTS`]) it walks the shared
//! [`crate::graph`] call graph (name-resolved, overapproximate) and
//! flags every panic site inside a reached function that lives in one
//! of the gated crates ([`PANIC_SCOPE`]):
//!
//! - `.unwrap()` / `.expect(…)`
//! - `panic!` / `unreachable!` / `todo!` / `unimplemented!`
//! - slice/array indexing `x[i]` (except the infallible full-range
//!   `x[..]`)
//!
//! Test-only code (`#[cfg(test)]` items, `#[test]` fns) is exempt, and
//! invariant-backed cold-path sites are allow-listed in source with
//! `// detlint::allow(DL008): <the invariant>` — the same mechanism
//! every other rule uses, so the justification sits next to the code.

use std::collections::BTreeMap;

use crate::graph::{is_non_callee, CallGraph, FnId};
use crate::lexer::{Lexed, TokenKind};
use crate::rules::excerpt;
use crate::Finding;

/// Simulation entry points the reachability walk starts from: the
/// serial and sharded semester drivers plus their out-of-core
/// streaming counterparts (cohort), the scheduler's fallible runner
/// (sched), and the service-mode soak (serve). Everything the
/// simulation can execute is reachable from these by construction.
pub const PANIC_ROOTS: &[&str] = &[
    "simulate_semester",
    "simulate_semester_with",
    "simulate_semester_serial",
    "simulate_semester_serial_with",
    "simulate_semester_streaming",
    "simulate_semester_streaming_serial",
    "try_run",
    "run_service",
];

/// Crates whose production sources are held to the panic-free contract.
pub const PANIC_SCOPE: &[&str] = &[
    "crates/testbed/src",
    "crates/cohort/src",
    "crates/sched/src",
    "crates/serve/src",
];

/// Macro names that unconditionally panic when reached.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Method names that panic on the error/empty variant.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Run the reachability pass and append DL008 findings.
pub fn check(sources: &[(&str, &str, &Lexed)], graph: &CallGraph, findings: &mut Vec<Finding>) {
    let reached: BTreeMap<FnId, String> = graph.reachable_from(PANIC_ROOTS);
    for (&(fi, gi), root) in &reached {
        let (path, src, lexed) = sources[fi];
        if !PANIC_SCOPE.iter().any(|scope| path.starts_with(scope)) {
            continue;
        }
        let span = &graph.files[fi].fns[gi];
        if span.is_test {
            continue;
        }
        let lines: Vec<&str> = src.lines().collect();
        let toks = &lexed.tokens;
        let body = &toks[span.open..=span.close];
        let mut i = 0;
        while i < body.len() {
            let t = &body[i];
            // `.unwrap(` / `.expect(`
            if t.text == "."
                && body
                    .get(i + 1)
                    .is_some_and(|m| PANIC_METHODS.contains(&m.text.as_str()))
                && body.get(i + 2).map(|t| t.text.as_str()) == Some("(")
            {
                let m = &body[i + 1];
                findings.push(site(
                    path,
                    m.line,
                    format!(
                        "`.{}(…)` in `{}`, reachable from simulation entry `{root}`; return a \
                         typed error, or annotate the invariant that makes this unreachable",
                        m.text, span.name
                    ),
                    &lines,
                ));
                i += 3;
                continue;
            }
            // `panic!` / `unreachable!` / `todo!` / `unimplemented!`
            if t.kind == TokenKind::Ident
                && PANIC_MACROS.contains(&t.text.as_str())
                && body.get(i + 1).map(|t| t.text.as_str()) == Some("!")
            {
                findings.push(site(
                    path,
                    t.line,
                    format!(
                        "`{}!` in `{}`, reachable from simulation entry `{root}`; replace with a \
                         typed error, or annotate the invariant that makes this unreachable",
                        t.text, span.name
                    ),
                    &lines,
                ));
                i += 2;
                continue;
            }
            // Slice/array indexing `x[i]` (skip the infallible `x[..]`).
            if t.kind == TokenKind::Ident
                && !is_non_callee(&t.text)
                && body.get(i + 1).map(|t| t.text.as_str()) == Some("[")
                && !(body.get(i + 2).map(|t| t.text.as_str()) == Some(".")
                    && body.get(i + 3).map(|t| t.text.as_str()) == Some(".")
                    && body.get(i + 4).map(|t| t.text.as_str()) == Some("]"))
            {
                findings.push(site(
                    path,
                    t.line,
                    format!(
                        "indexing `{}[…]` in `{}`, reachable from simulation entry `{root}`, \
                         panics when out of bounds; use `.get(…)` with a typed error, or \
                         annotate the bound that holds",
                        t.text, span.name
                    ),
                    &lines,
                ));
                i += 2;
                continue;
            }
            i += 1;
        }
    }
}

fn site(file: &str, line: u32, message: String, lines: &[&str]) -> Finding {
    Finding {
        rule: "DL008".to_string(),
        file: file.to_string(),
        line,
        message,
        excerpt: excerpt(lines, line),
    }
}
