//! Rule passes over the lexed token stream.
//!
//! | Rule  | What it catches |
//! |-------|-----------------|
//! | DL001 | Banned nondeterminism APIs (wall clock, ambient RNG, random hasher state, process ids) |
//! | DL002 | HashMap/HashSet iteration order leaking into ordered or order-sensitive sinks |
//! | DL003 | Rayon hazards: order-sensitive reductions over parallel iterators, `par_bridge` |
//! | DL004 | Lock-order cycles across `Mutex`/`RwLock` field acquisitions (potential deadlocks) |
//! | DL005 | Malformed suppressions: missing reason or unknown rule id |
//! | DL006 | Taint source: a function whose return value carries hash-iteration order |
//! | DL007 | Taint sink: a tainted call result flowing into an order-sensitive sink |
//! | DL008 | Panic site (`unwrap`/`expect`/`panic!`/index) reachable from a simulation entry point |
//! | DL009 | Non-associative float reduction inside shard-merge code |
//!
//! The table above is rendered from [`KNOWN_RULES`], the single source
//! of truth for rule ids: the suppression validator (DL005) and the
//! binary's `--help` catalog both consume it.
//!
//! DL004 lives in [`crate::locks`], DL006/DL007 in [`crate::taint`] and
//! DL008 in [`crate::panics`]: those are whole-workspace analyses over
//! the shared [`crate::graph`] call graph rather than per-file scans.
//!
//! All passes are heuristic token-level analyses: no type information,
//! and (except the graph passes) intra-function only. They are tuned so
//! that a true positive is worth a `// detlint::allow(rule): reason`
//! annotation when intentional.

use crate::graph::{match_brace, FnSpan};
use crate::lexer::{AllowDirective, Lexed, Token, TokenKind};
use crate::Finding;

/// Rule catalog: `(id, one-line summary)` for every rule detlint can
/// emit. Single source of truth for the DL005 suppression validator,
/// `detlint --help`, and the SARIF rule table.
pub const KNOWN_RULES: &[(&str, &str)] = &[
    (
        "DL001",
        "banned nondeterminism API (wall clock, ambient RNG, random hasher state, process id)",
    ),
    (
        "DL002",
        "hash-table iteration order leaking into an ordered or order-sensitive sink",
    ),
    (
        "DL003",
        "rayon hazard: order-sensitive reduction over a parallel iterator, or par_bridge",
    ),
    (
        "DL004",
        "lock-order cycle across Mutex/RwLock field acquisitions (potential deadlock)",
    ),
    (
        "DL005",
        "malformed detlint::allow suppression (missing reason or unknown rule id)",
    ),
    (
        "DL006",
        "determinism taint source: function returning an iterator over hash-table contents",
    ),
    (
        "DL007",
        "determinism taint sink: tainted call result flowing into an order-sensitive sink",
    ),
    (
        "DL008",
        "panic site (unwrap/expect/panic!/unreachable!/slice index) reachable from a simulation entry point",
    ),
    (
        "DL009",
        "non-associative float reduction (sum/fold/product) inside shard-merge code",
    ),
];

/// True when `id` names a rule in [`KNOWN_RULES`].
pub fn is_known_rule(id: &str) -> bool {
    KNOWN_RULES.iter().any(|(known, _)| *known == id)
}

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];
const ORDERED_TYPES: &[&str] = &["BTreeMap", "BTreeSet", "BinaryHeap"];
/// Iterator-source methods that expose hash-table ordering.
pub(crate) const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
    "into_keys",
    "into_values",
];
/// Chain adapters that bake the incoming order into the output.
const ORDER_BAKING_ADAPTERS: &[&str] = &[
    "enumerate",
    "zip",
    "take",
    "skip",
    "step_by",
    "nth",
    "chain",
];
/// Chain terminals whose result depends on element order.
const ORDER_SENSITIVE_TERMINALS: &[&str] = &[
    "collect", "fold", "sum", "product", "for_each", "next", "last", "position", "find",
    "find_map", "reduce", "min_by", "max_by", "try_fold", "scan",
];
/// Statements inside a `for`-over-hash body that accumulate in order.
const ORDER_SENSITIVE_BODY_CALLS: &[&str] = &[
    "push",
    "push_str",
    "push_back",
    "push_front",
    "extend",
    "write",
    "writeln",
    "format",
];

/// Run every per-file rule pass, appending findings. `fns` is the
/// file's function table from the shared [`crate::graph`] discovery.
pub fn check_file(
    file: &str,
    lexed: &Lexed,
    fns: &[FnSpan],
    lines: &[&str],
    findings: &mut Vec<Finding>,
) {
    let toks = &lexed.tokens;
    check_banned_apis(file, toks, lines, findings);
    let hash_fields = collect_hash_fields(toks);
    check_serialized_hash_fields(file, toks, lines, findings);
    for span in fns {
        check_hash_iteration(file, toks, span, &hash_fields, lines, findings);
        check_rayon(file, toks, span, lines, findings);
        check_float_merge(file, toks, span, lines, findings);
    }
    check_allow_directives(file, &lexed.allows, findings);
}

/// Excerpt of a 1-based source line, trimmed and capped.
pub(crate) fn excerpt(lines: &[&str], line: u32) -> String {
    let text = lines.get(line as usize - 1).map(|l| l.trim()).unwrap_or("");
    let mut out: String = text.chars().take(96).collect();
    if text.chars().count() > 96 {
        out.push('…');
    }
    out
}

fn finding(rule: &str, file: &str, line: u32, message: String, lines: &[&str]) -> Finding {
    Finding {
        rule: rule.to_string(),
        file: file.to_string(),
        line,
        message,
        excerpt: excerpt(lines, line),
    }
}

// ---------------------------------------------------------------------------
// DL001: banned APIs
// ---------------------------------------------------------------------------

fn check_banned_apis(file: &str, toks: &[Token], lines: &[&str], findings: &mut Vec<Finding>) {
    // (token sequence, message) — matched anywhere in the stream.
    let patterns: &[(&[&str], &str)] = &[
        (
            &["Instant", "::", "now"],
            "wall-clock read (Instant::now); simulation code must use the simulated clock",
        ),
        (
            &["SystemTime", "::", "now"],
            "wall-clock read (SystemTime::now); derive timestamps from the simulated clock",
        ),
        (
            &["thread_rng"],
            "ambient-entropy RNG (thread_rng); use a per-entity seeded simkernel Rng",
        ),
        (
            &["rand", "::", "rng"],
            "ambient-entropy RNG (rand::rng); use a per-entity seeded simkernel Rng",
        ),
        (
            &["from_entropy"],
            "entropy-seeded RNG construction; seeds must be explicit and logged",
        ),
        (
            &["RandomState"],
            "randomized hasher state; hash iteration order would vary between runs",
        ),
        (
            &["process", "::", "id"],
            "process id read; run-dependent value breaks replay equivalence",
        ),
    ];
    for i in 0..toks.len() {
        for (pat, msg) in patterns {
            if matches_seq(toks, i, pat) {
                // `rand::rng` must not also fire on `rand::rngs::...` paths.
                if pat.len() == 3
                    && pat[2] == "rng"
                    && toks.get(i + 3).is_some_and(|t| t.text == "::")
                {
                    continue;
                }
                findings.push(finding("DL001", file, toks[i].line, msg.to_string(), lines));
            }
        }
    }
}

fn matches_seq(toks: &[Token], at: usize, pat: &[&str]) -> bool {
    pat.len() <= toks.len() - at && pat.iter().enumerate().all(|(k, p)| toks[at + k].text == *p)
}

// ---------------------------------------------------------------------------
// Struct-field collection (shared by DL002 and DL004)
// ---------------------------------------------------------------------------

/// Names of struct fields whose type mentions HashMap/HashSet, file-wide.
pub(crate) fn collect_hash_fields(toks: &[Token]) -> std::collections::BTreeSet<String> {
    let mut out = std::collections::BTreeSet::new();
    for_each_struct_field(toks, |field, ty| {
        if ty.iter().any(|t| HASH_TYPES.contains(&t.as_str())) {
            out.insert(field.to_string());
        }
    });
    out
}

/// Invoke `f(field_name, type_tokens)` for each named field of each
/// `struct` item in the stream.
pub(crate) fn for_each_struct_field(toks: &[Token], mut f: impl FnMut(&str, &[String])) {
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "struct" && toks.get(i + 1).map(|t| t.kind) == Some(TokenKind::Ident) {
            // Skip generics after the name, then require a brace body
            // (tuple/unit structs have no named fields).
            let mut j = i + 2;
            if toks.get(j).map(|t| t.text.as_str()) == Some("<") {
                let mut depth = 1;
                j += 1;
                while j < toks.len() && depth > 0 {
                    match toks[j].text.as_str() {
                        "<" => depth += 1,
                        ">" => depth -= 1,
                        _ => {}
                    }
                    j += 1;
                }
            }
            if toks.get(j).map(|t| t.text.as_str()) == Some("{") {
                let close = match_brace(toks, j);
                let mut k = j + 1;
                while k < close {
                    // A field is `ident :` at brace depth 1 where the
                    // previous token is `,`, `{`, `]` (attr end) or `pub…)`.
                    if toks[k].kind == TokenKind::Ident
                        && toks.get(k + 1).map(|t| t.text.as_str()) == Some(":")
                    {
                        let (ty, next) = type_tokens(toks, k + 2, close);
                        let ty_texts: Vec<String> = ty.iter().map(|t| t.text.clone()).collect();
                        f(&toks[k].text, &ty_texts);
                        k = next;
                        continue;
                    }
                    k += 1;
                }
                i = close;
                continue;
            }
        }
        i += 1;
    }
}

/// Collect the tokens of a field type starting at `start`, stopping at the
/// `,` that ends the field (at angle/paren depth 0) or at `end`.
fn type_tokens(toks: &[Token], start: usize, end: usize) -> (Vec<Token>, usize) {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut j = start;
    while j < end {
        match toks[j].text.as_str() {
            "<" | "(" | "[" => depth += 1,
            ">" | ")" | "]" => depth -= 1,
            "," if depth == 0 => break,
            _ => {}
        }
        out.push(toks[j].clone());
        j += 1;
    }
    (out, j + 1)
}

// ---------------------------------------------------------------------------
// DL002a: hash-typed fields on Serialize-derived structs
// ---------------------------------------------------------------------------

fn check_serialized_hash_fields(
    file: &str,
    toks: &[Token],
    lines: &[&str],
    findings: &mut Vec<Finding>,
) {
    // Find `derive(...)` lists containing Serialize, then attach to the
    // next `struct` item and inspect its fields.
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "derive" && toks.get(i + 1).map(|t| t.text.as_str()) == Some("(") {
            let mut j = i + 2;
            let mut has_serialize = false;
            while j < toks.len() && toks[j].text != ")" {
                if toks[j].text == "Serialize" {
                    has_serialize = true;
                }
                j += 1;
            }
            if has_serialize {
                // Scan forward to the struct this derive is attached to
                // (skipping further attributes and visibility tokens).
                let mut k = j;
                while k < toks.len() && toks[k].text != "struct" && toks[k].text != "enum" {
                    // Bail if we hit another item boundary first.
                    if toks[k].text == "fn" || toks[k].text == "impl" {
                        break;
                    }
                    k += 1;
                }
                if k < toks.len() && toks[k].text == "struct" {
                    // Bound the scan to this struct's brace body so later
                    // structs in the file are not attributed to this derive.
                    let mut m = k + 2;
                    if toks.get(m).map(|t| t.text.as_str()) == Some("<") {
                        let mut depth = 1;
                        m += 1;
                        while m < toks.len() && depth > 0 {
                            match toks[m].text.as_str() {
                                "<" => depth += 1,
                                ">" => depth -= 1,
                                _ => {}
                            }
                            m += 1;
                        }
                    }
                    if toks.get(m).map(|t| t.text.as_str()) != Some("{") {
                        // Tuple/unit struct: no named fields to inspect.
                        i = k + 1;
                        continue;
                    }
                    let close = match_brace(toks, m);
                    let slice = &toks[k..=close];
                    for_each_struct_field(slice, |field, ty| {
                        if let Some(h) = ty.iter().find(|t| HASH_TYPES.contains(&t.as_str())) {
                            let line = slice
                                .iter()
                                .find(|t| t.text == *field)
                                .map(|t| t.line)
                                .unwrap_or(toks[k].line);
                            findings.push(finding(
                                "DL002",
                                file,
                                line,
                                format!(
                                    "field `{field}: {h}<…>` on a Serialize-derived struct: \
                                     serialization order follows hash order; use BTreeMap/BTreeSet \
                                     or sort at the emission point"
                                ),
                                lines,
                            ));
                        }
                    });
                    i = close + 1;
                    continue;
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// DL002b: hash iteration flowing into order-sensitive sinks
// ---------------------------------------------------------------------------

/// If `body[at]` heads a hash-valued expression (`name` or
/// `self.field` / `x.field` with a hash-typed field), return the index
/// of the `.` where its method chain starts.
pub(crate) fn hash_expr_head(
    body: &[Token],
    at: usize,
    hash_names: &std::collections::BTreeSet<String>,
    hash_fields: &std::collections::BTreeSet<String>,
) -> Option<usize> {
    let t = &body[at];
    if t.kind != TokenKind::Ident {
        return None;
    }
    // `self.field` / `binding.field` where field is hash-typed.
    if body.get(at + 1).map(|t| t.text.as_str()) == Some(".")
        && body.get(at + 2).map(|t| t.kind) == Some(TokenKind::Ident)
        && hash_fields.contains(&body[at + 2].text)
        && body.get(at + 3).map(|t| t.text.as_str()) == Some(".")
    {
        return Some(at + 3);
    }
    if hash_names.contains(&t.text) && body.get(at + 1).map(|t| t.text.as_str()) == Some(".") {
        // Not a field access consumed above.
        return Some(at + 1);
    }
    None
}

fn check_hash_iteration(
    file: &str,
    toks: &[Token],
    span: &FnSpan,
    hash_fields: &std::collections::BTreeSet<String>,
    lines: &[&str],
    findings: &mut Vec<Finding>,
) {
    let body = &toks[span.open..=span.close];
    let hash_names = collect_hash_bindings(toks, span);

    let is_hash_expr = |body: &[Token], at: usize| -> Option<usize> {
        hash_expr_head(body, at, &hash_names, hash_fields)
    };

    let mut i = 0;
    while i < body.len() {
        // `for pat in <expr-with-hash> { body }`
        if body[i].text == "for" {
            if let Some((iter_end, body_open)) = for_loop_shape(body, i) {
                let iterable = &body[i..iter_end];
                let hash_sourced = (i..iter_end).any(|k| {
                    is_hash_expr(body, k).is_some()
                        || (body[k].kind == TokenKind::Ident && hash_names.contains(&body[k].text))
                }) && !iterable
                    .iter()
                    .any(|t| ORDERED_TYPES.contains(&t.text.as_str()));
                if hash_sourced {
                    let close = match_brace(body, body_open);
                    if let Some(line_msg) =
                        order_sensitive_loop_body(body, body_open, close, span, toks)
                    {
                        findings.push(finding(
                            "DL002",
                            file,
                            body[i].line,
                            format!(
                                "for-loop over hash-table contents feeds {line_msg}; iterate a \
                                 sorted view (BTreeMap or collect-and-sort) before accumulating"
                            ),
                            lines,
                        ));
                    }
                    i = body_open;
                    continue;
                }
            }
        }
        // `name.iter()...` / `self.field.keys()...` chains.
        if let Some(dot) = is_hash_expr(body, i) {
            let method = body.get(dot + 1);
            if let Some(m) = method {
                if HASH_ITER_METHODS.contains(&m.text.as_str())
                    && body.get(dot + 2).map(|t| t.text.as_str()) == Some("(")
                {
                    if let Some(msg) = classify_chain(body, dot + 2, span, toks) {
                        findings.push(finding(
                            "DL002",
                            file,
                            body[i].line,
                            format!("hash-table iteration {msg}"),
                            lines,
                        ));
                    }
                    i = dot + 2;
                    continue;
                }
            }
        }
        i += 1;
    }
}

/// Collect names of let-bindings and parameters whose type or initializer
/// mentions HashMap/HashSet, within the function span.
pub(crate) fn collect_hash_bindings(
    toks: &[Token],
    span: &FnSpan,
) -> std::collections::BTreeSet<String> {
    let mut names = std::collections::BTreeSet::new();
    // Parameters: scan the signature between `fn` and the body `{`.
    let sig = &toks[span.fn_kw..span.open];
    let mut i = 0;
    while i < sig.len() {
        if sig[i].kind == TokenKind::Ident && sig.get(i + 1).map(|t| t.text.as_str()) == Some(":") {
            let mut j = i + 2;
            let mut depth = 0i32;
            while j < sig.len() {
                match sig[j].text.as_str() {
                    "<" | "(" => depth += 1,
                    ">" | ")" => depth -= 1,
                    "," if depth <= 0 => break,
                    _ => {}
                }
                if HASH_TYPES.contains(&sig[j].text.as_str()) {
                    names.insert(sig[i].text.clone());
                }
                j += 1;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    // Let-bindings in the body.
    let body = &toks[span.open..=span.close];
    let mut i = 0;
    while i < body.len() {
        if body[i].text == "let" {
            let mut j = i + 1;
            if body.get(j).map(|t| t.text.as_str()) == Some("mut") {
                j += 1;
            }
            if body.get(j).map(|t| t.kind) == Some(TokenKind::Ident) {
                let name = body[j].text.clone();
                // Scan the statement (to `;` at relative depth 0) for a
                // hash type in the annotation or initializer.
                let mut depth = 0i32;
                let mut k = j + 1;
                let mut is_hash = false;
                while k < body.len() {
                    match body[k].text.as_str() {
                        "{" | "(" | "[" => depth += 1,
                        "}" | ")" | "]" => depth -= 1,
                        ";" if depth <= 0 => break,
                        t if HASH_TYPES.contains(&t) => is_hash = true,
                        _ => {}
                    }
                    k += 1;
                }
                if is_hash {
                    names.insert(name);
                }
                i = k;
                continue;
            }
        }
        i += 1;
    }
    names
}

/// Returns `(index-past-iterable, index-of-body-open-brace)` for the `for`
/// at `at`, or `None` if it doesn't look like a for-loop.
pub(crate) fn for_loop_shape(body: &[Token], at: usize) -> Option<(usize, usize)> {
    // Find `in` at depth 0 after the pattern.
    let mut j = at + 1;
    let mut depth = 0i32;
    while j < body.len() {
        match body[j].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "in" if depth == 0 => break,
            "{" | ";" => return None,
            _ => {}
        }
        j += 1;
    }
    if j >= body.len() {
        return None;
    }
    // Iterable runs to the first `{` at depth 0 (struct literals are not
    // permitted unparenthesized in for-expressions).
    let mut k = j + 1;
    let mut depth = 0i32;
    while k < body.len() {
        match body[k].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => return Some((k, k)),
            ";" => return None,
            _ => {}
        }
        k += 1;
    }
    None
}

/// Check a for-body for order-sensitive accumulation. Returns a
/// description of the sink, or `None` if the body looks order-insensitive
/// (or every accumulation target is sorted later in the function).
pub(crate) fn order_sensitive_loop_body(
    body: &[Token],
    open: usize,
    close: usize,
    span: &FnSpan,
    toks: &[Token],
) -> Option<String> {
    let mut targets: Vec<String> = Vec::new();
    let mut sink = None;
    let mut k = open;
    while k < close {
        let t = &body[k];
        if t.kind == TokenKind::Ident
            && ORDER_SENSITIVE_BODY_CALLS.contains(&t.text.as_str())
            && body.get(k + 1).map(|t| t.text.as_str()) == Some("(")
            && k >= 2
            && body[k - 1].text == "."
        {
            targets.push(body[k - 2].text.clone());
            sink.get_or_insert_with(|| format!("`.{}(…)` accumulation", t.text));
        }
        // `acc += expr` — order-sensitive for floats; `+= 1` counters are
        // commutative and skipped.
        if t.text == "+"
            && body.get(k + 1).map(|t| t.text.as_str()) == Some("=")
            && body.get(k + 2).map(|t| t.text.as_str()) != Some("1")
            && k >= 1
            && body[k - 1].kind == TokenKind::Ident
        {
            targets.push(body[k - 1].text.clone());
            sink.get_or_insert_with(|| "`+=` accumulation".to_string());
        }
        k += 1;
    }
    let sink = sink?;
    // Benign if every accumulation target is sorted later in the function.
    let fn_body = &toks[span.open..=span.close];
    let all_sorted =
        !targets.is_empty() && targets.iter().all(|target| sorted_later(fn_body, target));
    if all_sorted {
        None
    } else {
        Some(sink)
    }
}

/// True if `target.sort…(` appears anywhere in the function body.
fn sorted_later(fn_body: &[Token], target: &str) -> bool {
    fn_body
        .windows(3)
        .any(|w| w[0].text == *target && w[1].text == "." && w[2].text.starts_with("sort"))
}

/// Walk a method chain whose first call's `(` is at `open`. Returns a
/// message if the chain is order-sensitive, else `None`.
pub(crate) fn classify_chain(
    body: &[Token],
    open: usize,
    span: &FnSpan,
    toks: &[Token],
) -> Option<String> {
    let mut methods: Vec<String> = Vec::new();
    let mut collect_turbofish: Vec<String> = Vec::new();
    let mut j = open;
    loop {
        // Skip the balanced call parens.
        let mut depth = 0i32;
        while j < body.len() {
            match body[j].text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        // Chain continues with `.method` (turbofish allowed).
        if body.get(j).map(|t| t.text.as_str()) == Some("?") {
            j += 1;
        }
        if body.get(j).map(|t| t.text.as_str()) != Some(".") {
            break;
        }
        let m = body.get(j + 1)?;
        if m.kind != TokenKind::Ident {
            break;
        }
        let name = m.text.clone();
        j += 2;
        if body.get(j).map(|t| t.text.as_str()) == Some("::") {
            // Turbofish: `::< … >`.
            if body.get(j + 1).map(|t| t.text.as_str()) == Some("<") {
                let mut depth = 1i32;
                let mut k = j + 2;
                while k < body.len() && depth > 0 {
                    match body[k].text.as_str() {
                        "<" => depth += 1,
                        ">" => depth -= 1,
                        t => {
                            if name == "collect" {
                                collect_turbofish.push(t.to_string());
                            }
                        }
                    }
                    k += 1;
                }
                j = k;
            }
        }
        methods.push(name);
        if body.get(j).map(|t| t.text.as_str()) != Some("(") {
            break;
        }
    }

    // Order-baking adapters make the chain sensitive regardless of terminal.
    if let Some(a) = methods
        .iter()
        .find(|m| ORDER_BAKING_ADAPTERS.contains(&m.as_str()))
    {
        return Some(format!(
            "passes through `.{a}(…)`, which bakes the arbitrary hash order into the result"
        ));
    }
    let terminal = methods.last()?;
    if !ORDER_SENSITIVE_TERMINALS.contains(&terminal.as_str()) {
        return None;
    }
    if terminal == "collect" {
        // Collecting back into an unordered or self-ordering container is
        // benign: the destination imposes (or removes) its own order.
        let benign = collect_turbofish
            .iter()
            .any(|t| ORDERED_TYPES.contains(&t.as_str()) || HASH_TYPES.contains(&t.as_str()));
        if benign {
            return None;
        }
        if collect_turbofish.is_empty() {
            // Destination type unknown: check the let-binding annotation,
            // and whether the collected binding is sorted afterwards.
            if let Some(b) = chain_binding(body, open) {
                if b.ty_has_ordered_or_hash {
                    return None;
                }
                if sorted_later(&toks[span.open..=span.close], &b.name) {
                    return None;
                }
            }
        }
        return Some(
            "collects into an ordered container without sorting; hash order becomes the \
             element order"
                .to_string(),
        );
    }
    Some(format!(
        "terminates in order-sensitive `.{terminal}(…)`; sort the entries (or use BTreeMap) first"
    ))
}

struct ChainBinding {
    name: String,
    ty_has_ordered_or_hash: bool,
}

/// If the chain whose first `(` is at `open` is the initializer of a
/// `let [mut] name[: ty] = …` statement, return the binding.
fn chain_binding(body: &[Token], open: usize) -> Option<ChainBinding> {
    // Walk backwards from the chain head to the statement's `=` then `let`.
    let mut j = open;
    while j > 0 {
        j -= 1;
        match body[j].text.as_str() {
            "=" => break,
            ";" | "{" | "}" => return None,
            _ => {}
        }
    }
    if j == 0 {
        return None;
    }
    let eq = j;
    // Scan back to `let`.
    let mut k = eq;
    while k > 0 {
        k -= 1;
        match body[k].text.as_str() {
            "let" => {
                let mut m = k + 1;
                if body.get(m).map(|t| t.text.as_str()) == Some("mut") {
                    m += 1;
                }
                let name = body.get(m)?.text.clone();
                let ty_has = body[m..eq].iter().any(|t| {
                    ORDERED_TYPES.contains(&t.text.as_str())
                        || HASH_TYPES.contains(&t.text.as_str())
                });
                return Some(ChainBinding {
                    name,
                    ty_has_ordered_or_hash: ty_has,
                });
            }
            ";" | "{" | "}" => return None,
            _ => {}
        }
    }
    None
}

// ---------------------------------------------------------------------------
// DL003: rayon hazards
// ---------------------------------------------------------------------------

fn check_rayon(
    file: &str,
    toks: &[Token],
    span: &FnSpan,
    lines: &[&str],
    findings: &mut Vec<Finding>,
) {
    let body = &toks[span.open..=span.close];
    let par_sources = [
        "par_iter",
        "into_par_iter",
        "par_iter_mut",
        "par_chunks",
        "par_chunks_mut",
    ];
    let mut i = 0;
    while i < body.len() {
        let t = &body[i];
        if t.text == "par_bridge" {
            findings.push(finding(
                "DL003",
                file,
                t.line,
                "par_bridge() yields items in nondeterministic order; use an indexed parallel \
                 iterator instead"
                    .to_string(),
                lines,
            ));
            i += 1;
            continue;
        }
        if par_sources.contains(&t.text.as_str())
            && body.get(i + 1).map(|t| t.text.as_str()) == Some("(")
        {
            // Scan the rest of the statement for order-sensitive reductions:
            // rayon's reduce/fold regroup elements per thread count, so
            // non-associative ops (notably float sums) diverge.
            let mut depth = 0i32;
            let mut k = i + 1;
            while k < body.len() {
                match body[k].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ";" if depth <= 0 => break,
                    "reduce" | "fold" | "sum" | "product" if depth == 0 => {
                        findings.push(finding(
                            "DL003",
                            file,
                            body[k].line,
                            format!(
                                "`.{}(…)` over a parallel iterator regroups elements by thread \
                                 count; collect in index order and reduce sequentially",
                                body[k].text
                            ),
                            lines,
                        ));
                    }
                    _ => {}
                }
                if depth < 0 {
                    break;
                }
                k += 1;
            }
            i = k;
            continue;
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// DL009: non-associative float reductions in shard-merge code
// ---------------------------------------------------------------------------

/// Chain terminals that reduce many elements into one value.
const FLOAT_REDUCE_TERMINALS: &[&str] = &["sum", "product", "fold"];

/// Flag float `sum`/`fold`/`product` chains inside functions whose name
/// marks them as shard-merge code (`*merge*`). The sharded semester's
/// byte-identity guarantee rests on every merge reducing in a pinned
/// order (shard index, sorted keys); a float reduction whose input order
/// is incidental silently diverges between thread counts. Parallel
/// (`par_*`) chains are skipped here — DL003 already owns those.
fn check_float_merge(
    file: &str,
    toks: &[Token],
    span: &FnSpan,
    lines: &[&str],
    findings: &mut Vec<Finding>,
) {
    if !span.name.to_ascii_lowercase().contains("merge") {
        return;
    }
    let body = &toks[span.open..=span.close];
    let mut i = 0;
    while i + 1 < body.len() {
        if body[i].text == "."
            && body[i + 1].kind == TokenKind::Ident
            && FLOAT_REDUCE_TERMINALS.contains(&body[i + 1].text.as_str())
            && {
                // Method call: `.sum(` or `.sum::<…>(`.
                let after = body.get(i + 2).map(|t| t.text.as_str());
                after == Some("(") || after == Some("::")
            }
        {
            let name = body[i + 1].text.clone();
            let (lo, hi) = statement_range(body, i);
            let stmt = &body[lo..hi];
            let parallel = stmt
                .iter()
                .any(|t| t.text.starts_with("par_") || t.text == "par_bridge");
            let float_typed = stmt.iter().any(|t| t.text == "f64" || t.text == "f32")
                || (name == "fold" && fold_seed_is_float(body, i + 2));
            if !parallel && float_typed {
                findings.push(finding(
                    "DL009",
                    file,
                    body[i + 1].line,
                    format!(
                        "float `.{name}(…)` in shard-merge function `{}`: non-associative \
                         accumulation depends on element order; pin the order (shard index or \
                         sorted keys) and annotate the invariant, or accumulate in integers",
                        span.name
                    ),
                    lines,
                ));
            }
            i += 2;
            continue;
        }
        i += 1;
    }
}

/// Token range (half-open, body-relative) of the statement containing
/// `at`: back to the previous `;`/`{`/`}` and forward to the next `;`.
/// Cutting at a closure's braces is acceptable for the heuristic scans
/// this feeds (type-evidence searches).
fn statement_range(body: &[Token], at: usize) -> (usize, usize) {
    let mut lo = at;
    while lo > 0 && !matches!(body[lo - 1].text.as_str(), ";" | "{" | "}") {
        lo -= 1;
    }
    let mut hi = at;
    while hi < body.len() && body[hi].text != ";" {
        hi += 1;
    }
    (lo, hi)
}

/// True when the first argument of the call whose `::`/`(` starts at
/// `after` is a float literal (e.g. `.fold(0.0, …)`).
fn fold_seed_is_float(body: &[Token], after: usize) -> bool {
    let mut j = after;
    // Skip a turbofish if present.
    if body.get(j).map(|t| t.text.as_str()) == Some("::")
        && body.get(j + 1).map(|t| t.text.as_str()) == Some("<")
    {
        let mut depth = 1i32;
        j += 2;
        while j < body.len() && depth > 0 {
            match body[j].text.as_str() {
                "<" => depth += 1,
                ">" => depth -= 1,
                _ => {}
            }
            j += 1;
        }
    }
    if body.get(j).map(|t| t.text.as_str()) != Some("(") {
        return false;
    }
    body.get(j + 1)
        .is_some_and(|t| t.kind == TokenKind::Literal && t.text.contains('.'))
}

// ---------------------------------------------------------------------------
// DL005: malformed suppressions
// ---------------------------------------------------------------------------

fn check_allow_directives(file: &str, allows: &[AllowDirective], findings: &mut Vec<Finding>) {
    for a in allows {
        let canonical = a.rule.to_ascii_uppercase();
        if !is_known_rule(&canonical) {
            let known: Vec<&str> = KNOWN_RULES.iter().map(|(id, _)| *id).collect();
            findings.push(Finding {
                rule: "DL005".to_string(),
                file: file.to_string(),
                line: a.line,
                message: format!(
                    "detlint::allow names unknown rule `{}` (known: {})",
                    a.rule,
                    known.join(", ")
                ),
                excerpt: String::new(),
            });
        }
        if a.reason.is_empty() {
            findings.push(Finding {
                rule: "DL005".to_string(),
                file: file.to_string(),
                line: a.line,
                message: format!(
                    "detlint::allow({}) has no reason; write `// detlint::allow({}): why`",
                    a.rule, a.rule
                ),
                excerpt: String::new(),
            });
        }
    }
}
