//! Experiment tracking — the Unit 5 lab substrate.
//!
//! The lab deploys "an MLFlow tracking server … configured a training
//! script to log experiment metadata, system metrics, hyperparameters, ML
//! metrics, and models" (§3.5). This module is that server's mechanism: a
//! concurrent store of runs with parameters, stepped metric series, system
//! metrics, and binary artifacts, plus the comparison/best-run queries the
//! lab uses to "identify training bottlenecks, compare experiment results,
//! and inspect model artifacts".
//!
//! The tracker is `Clone + Send + Sync` (an `Arc<RwLock<…>>` like the real
//! server's backend store) so trainer threads log concurrently.

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Opaque run identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RunId(pub u64);

/// Terminal state of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunStatus {
    /// Still logging.
    Running,
    /// Completed successfully.
    Finished,
    /// Failed (still queryable — §3.5's case studies require storing
    /// records for *every* run, including crashed ones).
    Failed,
}

/// One metric observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricPoint {
    /// Training step (or poll index for system metrics).
    pub step: u64,
    /// Value.
    pub value: f64,
}

/// A stored artifact (e.g. serialized model parameters).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Artifact {
    /// Artifact path/name.
    pub name: String,
    /// Raw bytes.
    pub data: Vec<u8>,
}

/// One tracked run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Run {
    /// Identifier.
    pub id: RunId,
    /// Experiment this run belongs to.
    pub experiment: String,
    /// Logged hyperparameters.
    pub params: BTreeMap<String, String>,
    /// ML metric series by name. Ordered maps: runs are serialized into
    /// reports, so series order must not depend on hasher state (DL002).
    pub metrics: BTreeMap<String, Vec<MetricPoint>>,
    /// System metric series by name (GPU util, throughput, …).
    pub system_metrics: BTreeMap<String, Vec<MetricPoint>>,
    /// Artifacts.
    pub artifacts: Vec<Artifact>,
    /// Status.
    pub status: RunStatus,
}

impl Run {
    /// Last value of a metric, if logged.
    pub fn last_metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .get(name)
            .and_then(|s| s.last())
            .map(|p| p.value)
    }

    /// Fetch an artifact by name.
    pub fn artifact(&self, name: &str) -> Option<&Artifact> {
        self.artifacts.iter().find(|a| a.name == name)
    }
}

#[derive(Debug, Default)]
struct Store {
    runs: Vec<Run>,
}

/// The tracking server handle (cheap to clone; thread-safe).
#[derive(Debug, Clone, Default)]
pub struct ExperimentTracker {
    store: Arc<RwLock<Store>>,
}

impl ExperimentTracker {
    /// New empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a run under an experiment name.
    pub fn start_run(&self, experiment: &str) -> RunId {
        let mut s = self.store.write();
        let id = RunId(s.runs.len() as u64);
        s.runs.push(Run {
            id,
            experiment: experiment.to_string(),
            params: BTreeMap::new(),
            metrics: BTreeMap::new(),
            system_metrics: BTreeMap::new(),
            artifacts: Vec::new(),
            status: RunStatus::Running,
        });
        id
    }

    fn with_run<R>(&self, id: RunId, f: impl FnOnce(&mut Run) -> R) -> R {
        let mut s = self.store.write();
        let run = s
            .runs
            .get_mut(id.0 as usize)
            .unwrap_or_else(|| panic!("unknown run {id:?}"));
        f(run)
    }

    /// Log a hyperparameter.
    pub fn log_param(&self, id: RunId, key: &str, value: &str) {
        self.with_run(id, |r| {
            r.params.insert(key.to_string(), value.to_string());
        });
    }

    /// Log an ML metric point.
    pub fn log_metric(&self, id: RunId, name: &str, step: u64, value: f64) {
        self.with_run(id, |r| {
            r.metrics
                .entry(name.to_string())
                .or_default()
                .push(MetricPoint { step, value });
        });
    }

    /// Log a system metric point (GPU util, samples/sec, host RAM…).
    pub fn log_system_metric(&self, id: RunId, name: &str, step: u64, value: f64) {
        self.with_run(id, |r| {
            r.system_metrics
                .entry(name.to_string())
                .or_default()
                .push(MetricPoint { step, value });
        });
    }

    /// Store an artifact.
    pub fn log_artifact(&self, id: RunId, name: &str, data: Vec<u8>) {
        self.with_run(id, |r| {
            r.artifacts.push(Artifact {
                name: name.to_string(),
                data,
            })
        });
    }

    /// Mark a run finished/failed.
    pub fn end_run(&self, id: RunId, status: RunStatus) {
        assert_ne!(
            status,
            RunStatus::Running,
            "end_run needs a terminal status"
        );
        self.with_run(id, |r| r.status = status);
    }

    /// Snapshot of one run.
    pub fn run(&self, id: RunId) -> Option<Run> {
        self.store.read().runs.get(id.0 as usize).cloned()
    }

    /// All runs in an experiment, in creation order.
    pub fn runs_in(&self, experiment: &str) -> Vec<Run> {
        self.store
            .read()
            .runs
            .iter()
            .filter(|r| r.experiment == experiment)
            .cloned()
            .collect()
    }

    /// Total number of runs.
    pub fn run_count(&self) -> usize {
        self.store.read().runs.len()
    }

    /// Best finished run in an experiment by the last value of `metric`.
    pub fn best_run(&self, experiment: &str, metric: &str, maximize: bool) -> Option<Run> {
        let runs = self.runs_in(experiment);
        runs.into_iter()
            .filter(|r| r.status == RunStatus::Finished)
            .filter_map(|r| r.last_metric(metric).map(|v| (r, v)))
            .max_by(|a, b| {
                let ord = a.1.partial_cmp(&b.1).expect("metric NaN");
                if maximize {
                    ord
                } else {
                    ord.reverse()
                }
            })
            .map(|(r, _)| r)
    }

    /// Compare the last value of a metric across runs:
    /// `(run id, param snapshot, value)` sorted best-first.
    pub fn compare(
        &self,
        experiment: &str,
        metric: &str,
        maximize: bool,
    ) -> Vec<(RunId, BTreeMap<String, String>, f64)> {
        let mut rows: Vec<_> = self
            .runs_in(experiment)
            .into_iter()
            .filter_map(|r| r.last_metric(metric).map(|v| (r.id, r.params, v)))
            .collect();
        rows.sort_by(|a, b| {
            let ord = a.2.partial_cmp(&b.2).expect("metric NaN");
            if maximize {
                ord.reverse()
            } else {
                ord
            }
        });
        rows
    }

    /// Bottleneck heuristic the lab teaches: if mean GPU utilization is low
    /// while the input pipeline's wait share is high, training is
    /// input-bound.
    pub fn diagnose_bottleneck(&self, id: RunId) -> Option<&'static str> {
        let run = self.run(id)?;
        let mean = |series: Option<&Vec<MetricPoint>>| {
            series.and_then(|s| {
                if s.is_empty() {
                    None
                } else {
                    Some(s.iter().map(|p| p.value).sum::<f64>() / s.len() as f64)
                }
            })
        };
        let gpu = mean(run.system_metrics.get("gpu_util"))?;
        let wait = mean(run.system_metrics.get("data_wait_frac"))?;
        Some(if gpu < 0.5 && wait > 0.3 {
            "input-bound: GPU starved by the data pipeline"
        } else if gpu > 0.9 {
            "compute-bound: GPU saturated"
        } else {
            "balanced"
        })
    }
}

/// Serialize model parameters as a little-endian f32 artifact payload.
pub fn params_to_artifact(params: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(params.len() * 4);
    for p in params {
        out.extend_from_slice(&p.to_le_bytes());
    }
    out
}

/// Inverse of [`params_to_artifact`].
pub fn artifact_to_params(data: &[u8]) -> Vec<f32> {
    assert_eq!(data.len() % 4, 0, "artifact length not a multiple of 4");
    data.chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_run_lifecycle() {
        let t = ExperimentTracker::new();
        let id = t.start_run("food11");
        t.log_param(id, "lr", "0.1");
        t.log_metric(id, "loss", 0, 2.4);
        t.log_metric(id, "loss", 1, 1.1);
        t.log_system_metric(id, "gpu_util", 0, 0.92);
        t.log_artifact(id, "model.bin", vec![1, 2, 3, 4]);
        t.end_run(id, RunStatus::Finished);
        let run = t.run(id).unwrap();
        assert_eq!(run.params["lr"], "0.1");
        assert_eq!(run.last_metric("loss"), Some(1.1));
        assert_eq!(run.artifact("model.bin").unwrap().data, vec![1, 2, 3, 4]);
        assert_eq!(run.status, RunStatus::Finished);
    }

    #[test]
    fn best_run_ignores_failed() {
        let t = ExperimentTracker::new();
        let good = t.start_run("exp");
        t.log_metric(good, "acc", 0, 0.8);
        t.end_run(good, RunStatus::Finished);
        let better_but_failed = t.start_run("exp");
        t.log_metric(better_but_failed, "acc", 0, 0.99);
        t.end_run(better_but_failed, RunStatus::Failed);
        let best = t.best_run("exp", "acc", true).unwrap();
        assert_eq!(best.id, good);
    }

    #[test]
    fn best_run_minimize() {
        let t = ExperimentTracker::new();
        for (i, loss) in [0.5, 0.2, 0.9].iter().enumerate() {
            let id = t.start_run("exp");
            t.log_param(id, "trial", &i.to_string());
            t.log_metric(id, "loss", 0, *loss);
            t.end_run(id, RunStatus::Finished);
        }
        let best = t.best_run("exp", "loss", false).unwrap();
        assert_eq!(best.params["trial"], "1");
    }

    #[test]
    fn compare_sorts_best_first() {
        let t = ExperimentTracker::new();
        for acc in [0.7, 0.9, 0.8] {
            let id = t.start_run("exp");
            t.log_metric(id, "acc", 0, acc);
            t.end_run(id, RunStatus::Finished);
        }
        let rows = t.compare("exp", "acc", true);
        let accs: Vec<f64> = rows.iter().map(|r| r.2).collect();
        assert_eq!(accs, vec![0.9, 0.8, 0.7]);
    }

    #[test]
    fn concurrent_logging_is_safe_and_complete() {
        let t = ExperimentTracker::new();
        let ids: Vec<RunId> = (0..8).map(|_| t.start_run("parallel")).collect();
        std::thread::scope(|s| {
            for &id in &ids {
                let t = t.clone();
                s.spawn(move || {
                    for step in 0..500u64 {
                        t.log_metric(id, "loss", step, 1.0 / (step + 1) as f64);
                    }
                    t.end_run(id, RunStatus::Finished);
                });
            }
        });
        for id in ids {
            let run = t.run(id).unwrap();
            assert_eq!(run.metrics["loss"].len(), 500);
            // Steps arrive in order (single writer per run).
            let steps: Vec<u64> = run.metrics["loss"].iter().map(|p| p.step).collect();
            assert_eq!(steps, (0..500).collect::<Vec<_>>());
        }
    }

    #[test]
    fn bottleneck_diagnosis() {
        let t = ExperimentTracker::new();
        let starved = t.start_run("exp");
        for step in 0..10 {
            t.log_system_metric(starved, "gpu_util", step, 0.3);
            t.log_system_metric(starved, "data_wait_frac", step, 0.6);
        }
        assert!(t
            .diagnose_bottleneck(starved)
            .unwrap()
            .starts_with("input-bound"));
        let busy = t.start_run("exp");
        for step in 0..10 {
            t.log_system_metric(busy, "gpu_util", step, 0.97);
            t.log_system_metric(busy, "data_wait_frac", step, 0.02);
        }
        assert!(t
            .diagnose_bottleneck(busy)
            .unwrap()
            .starts_with("compute-bound"));
    }

    #[test]
    fn params_artifact_roundtrip() {
        let params = vec![1.5f32, -2.25, 0.0, 3.125e-3];
        let bytes = params_to_artifact(&params);
        assert_eq!(bytes.len(), 16);
        assert_eq!(artifact_to_params(&bytes), params);
    }

    #[test]
    fn runs_in_filters_by_experiment() {
        let t = ExperimentTracker::new();
        t.start_run("a");
        t.start_run("b");
        t.start_run("a");
        assert_eq!(t.runs_in("a").len(), 2);
        assert_eq!(t.runs_in("b").len(), 1);
        assert_eq!(t.run_count(), 3);
    }
}
