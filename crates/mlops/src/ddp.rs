//! Distributed data-parallel (DDP) training.
//!
//! Each of `K` worker threads holds a full model replica and a shard of
//! the data; every step the workers compute gradients on their own
//! mini-batches **in parallel**, average them with a real
//! [`crate::allreduce`] collective, and apply identical optimizer updates
//! — so the replicas stay bit-identical, which [`DdpReport::in_sync`]
//! verifies. This is the §3.4 lab ("then across 4 GPUs using distributed
//! training techniques") at laptop scale.

use crate::allreduce::{all_reduce, AllReduceStats, ReduceAlgo};
use crate::model::{softmax_cross_entropy, Dataset, Mlp, Sgd};
use opml_simkernel::{split_seed, Rng};
use serde::{Deserialize, Serialize};

/// Configuration for a DDP run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DdpConfig {
    /// Layer sizes `[input, hidden…, classes]`.
    pub sizes: Vec<usize>,
    /// Number of data-parallel workers.
    pub workers: usize,
    /// Epochs.
    pub epochs: usize,
    /// Per-worker mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Momentum.
    pub momentum: f32,
    /// Gradient-averaging collective.
    pub algo: ReduceAlgo,
    /// Master seed (controls init and shuffling).
    pub seed: u64,
}

/// Outcome of a DDP run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DdpReport {
    /// `(mean loss, train accuracy)` per epoch, measured on worker 0's
    /// replica over the full dataset.
    pub history: Vec<(f32, f64)>,
    /// Whether all replicas ended bit-identical.
    pub in_sync: bool,
    /// Total bytes each worker sent in gradient collectives.
    pub comm_bytes_per_worker: Vec<usize>,
    /// Number of all-reduce invocations.
    pub steps: usize,
}

/// Train with DDP; returns the final (synchronized) model and the report.
pub fn train_ddp(cfg: &DdpConfig, data: &Dataset) -> (Mlp, DdpReport) {
    assert!(cfg.workers > 0 && cfg.epochs > 0 && cfg.batch_size > 0);
    let mut init_rng = Rng::new(cfg.seed);
    let template = Mlp::new(&cfg.sizes, &mut init_rng);
    let mut replicas: Vec<Mlp> = (0..cfg.workers).map(|_| template.clone()).collect();
    let mut opts: Vec<Sgd> = (0..cfg.workers)
        .map(|_| Sgd::new(cfg.lr, cfg.momentum))
        .collect();
    let shards = data.shards(cfg.workers);

    let mut history = Vec::with_capacity(cfg.epochs);
    let mut comm_bytes = vec![0usize; cfg.workers];
    let mut steps = 0usize;

    for epoch in 0..cfg.epochs {
        // Per-worker deterministic shuffles.
        let orders: Vec<Vec<usize>> = (0..cfg.workers)
            .map(|w| {
                let mut idx: Vec<usize> = (0..shards[w].len()).collect();
                Rng::new(split_seed(cfg.seed, (epoch * cfg.workers + w) as u64 + 1))
                    .shuffle(&mut idx);
                idx
            })
            .collect();
        let steps_this_epoch = orders
            .iter()
            .map(|o| o.len().div_ceil(cfg.batch_size))
            .max()
            .unwrap_or(0);

        let mut epoch_loss = 0.0f32;
        for step in 0..steps_this_epoch {
            // Parallel gradient computation: one thread per worker.
            let losses: Vec<f32> = std::thread::scope(|s| {
                let handles: Vec<_> = replicas
                    .iter_mut()
                    .enumerate()
                    .map(|(w, model)| {
                        let shard = &shards[w];
                        let order = &orders[w];
                        s.spawn(move || {
                            let lo = step * cfg.batch_size;
                            if lo >= order.len() {
                                // Idle worker contributes zero gradients
                                // (it must still participate in the
                                // collective to keep replicas in step).
                                model.zero_grads();
                                return 0.0;
                            }
                            let hi = (lo + cfg.batch_size).min(order.len());
                            let batch = shard.subset(&order[lo..hi]);
                            model.zero_grads();
                            let logits = model.forward(&batch.x);
                            let (loss, d) = softmax_cross_entropy(&logits, &batch.y);
                            model.backward(&d);
                            loss
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("ddp worker panicked"))
                    .collect()
            });
            epoch_loss += losses.iter().sum::<f32>() / cfg.workers as f32;

            // Average gradients with the chosen collective.
            let mut grads: Vec<Vec<f32>> = replicas.iter().map(Mlp::grads_flat).collect();
            let stats: AllReduceStats = all_reduce(&mut grads, cfg.algo);
            for (acc, &b) in comm_bytes.iter_mut().zip(&stats.bytes_sent) {
                *acc += b;
            }
            steps += 1;
            let scale = 1.0 / cfg.workers as f32;
            for (model, (grad, opt)) in replicas
                .iter_mut()
                .zip(grads.iter_mut().zip(opts.iter_mut()))
            {
                for g in grad.iter_mut() {
                    *g *= scale;
                }
                model.set_grads_flat(grad);
                opt.step(model);
            }
        }
        let acc = data.accuracy(&mut replicas[0]);
        history.push((epoch_loss / steps_this_epoch.max(1) as f32, acc));
    }

    let reference = replicas[0].params_flat();
    let in_sync = replicas.iter().all(|m| m.params_flat() == reference);
    let model = replicas.swap_remove(0);
    (
        model,
        DdpReport {
            history,
            in_sync,
            comm_bytes_per_worker: comm_bytes,
            steps,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(workers: usize, algo: ReduceAlgo) -> DdpConfig {
        DdpConfig {
            sizes: vec![8, 24, 11],
            workers,
            epochs: 12,
            batch_size: 16,
            lr: 0.1,
            momentum: 0.9,
            algo,
            seed: 77,
        }
    }

    #[test]
    fn replicas_stay_in_sync() {
        let data = Dataset::blobs(440, 8, 11, 0.6, 70);
        for algo in ReduceAlgo::ALL {
            let (_, report) = train_ddp(&config(4, algo), &data);
            assert!(report.in_sync, "{} lost sync", algo.name());
        }
    }

    #[test]
    fn ddp_learns_the_task() {
        let data = Dataset::blobs(440, 8, 11, 0.6, 71);
        let (mut model, report) = train_ddp(&config(4, ReduceAlgo::Ring), &data);
        assert!(
            report.history.last().unwrap().1 > 0.85,
            "{:?}",
            report.history.last()
        );
        assert!(data.accuracy(&mut model) > 0.85);
    }

    #[test]
    fn more_workers_same_quality() {
        // 1-worker DDP (degenerate) and 4-worker DDP should both learn.
        let data = Dataset::blobs(440, 8, 11, 0.6, 72);
        let (_, r1) = train_ddp(&config(1, ReduceAlgo::Ring), &data);
        let (_, r4) = train_ddp(&config(4, ReduceAlgo::Ring), &data);
        assert!(r1.history.last().unwrap().1 > 0.85);
        assert!(r4.history.last().unwrap().1 > 0.85);
        // 4 workers do 1/4 the sequential steps per epoch; comm only for >1.
        assert_eq!(r1.comm_bytes_per_worker, vec![0]);
        assert!(r4.comm_bytes_per_worker.iter().all(|&b| b > 0));
    }

    #[test]
    fn ring_comm_is_balanced_ps_is_not() {
        let data = Dataset::blobs(220, 8, 11, 0.6, 73);
        let mut cfg = config(4, ReduceAlgo::Ring);
        cfg.epochs = 2;
        let (_, ring) = train_ddp(&cfg, &data);
        cfg.algo = ReduceAlgo::ParameterServer;
        let (_, ps) = train_ddp(&cfg, &data);
        // Ring comm is balanced up to chunk rounding (params % workers).
        let ring_max = *ring.comm_bytes_per_worker.iter().max().unwrap();
        let ring_min = *ring.comm_bytes_per_worker.iter().min().unwrap();
        let imbalance = (ring_max - ring_min) as f64 / ring_max as f64;
        assert!(
            imbalance < 0.01,
            "ring comm imbalance too large: {:?}",
            ring.comm_bytes_per_worker
        );
        assert!(
            ps.comm_bytes_per_worker[0] > 2 * ps.comm_bytes_per_worker[1],
            "PS root should dominate: {:?}",
            ps.comm_bytes_per_worker
        );
    }

    #[test]
    fn deterministic_end_to_end() {
        let data = Dataset::blobs(220, 8, 11, 0.6, 74);
        let mut cfg = config(3, ReduceAlgo::Ring);
        cfg.epochs = 3;
        let (a, _) = train_ddp(&cfg, &data);
        let (b, _) = train_ddp(&cfg, &data);
        assert_eq!(a.params_flat(), b.params_flat());
    }
}
