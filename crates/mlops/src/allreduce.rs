//! Gradient aggregation collectives over real threads.
//!
//! The Unit 4 lecture covers "the ring all-reduce communication pattern …
//! first introduced in an HPC context and then later applied to efficient
//! gradient aggregation for distributed training … in detail" (§3.4,
//! citing Patarasuk & Yuan '09 and Baidu's allreduce). This module
//! implements it for real: `N` worker threads connected in a ring by
//! channels, running reduce-scatter followed by all-gather, with
//! **parameter-server** and **binary-tree** baselines for the ablation
//! bench.
//!
//! The bandwidth-optimality claim the lecture teaches is checkable here:
//! with payload `S` bytes and `N` workers, ring sends `2·S·(N−1)/N` bytes
//! *per worker* (constant in `N`), while the parameter-server root sends
//! and receives `S·(N−1)` (linear in `N`). [`AllReduceStats`] meters the
//! actual bytes moved, and `tests::ring_is_bandwidth_optimal` pins the
//! formula.

use crossbeam::channel::{unbounded, Receiver, Sender};
use serde::{Deserialize, Serialize};

/// Which collective algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReduceAlgo {
    /// Ring reduce-scatter + all-gather (bandwidth optimal).
    Ring,
    /// Binary-tree reduce to rank 0, then tree broadcast (latency
    /// optimal for small payloads: 2·log₂N rounds).
    Tree,
    /// All workers send to rank 0, which sums and sends back
    /// (the naive baseline; root bandwidth grows linearly with N).
    ParameterServer,
}

impl ReduceAlgo {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            ReduceAlgo::Ring => "ring",
            ReduceAlgo::Tree => "tree",
            ReduceAlgo::ParameterServer => "parameter-server",
        }
    }

    /// All algorithms, for sweeps.
    pub const ALL: [ReduceAlgo; 3] = [
        ReduceAlgo::Ring,
        ReduceAlgo::Tree,
        ReduceAlgo::ParameterServer,
    ];
}

/// Measured communication behaviour of one collective invocation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AllReduceStats {
    /// Bytes sent by each worker.
    pub bytes_sent: Vec<usize>,
    /// Communication rounds executed.
    pub rounds: usize,
}

impl AllReduceStats {
    /// The largest per-worker send volume — the bandwidth bottleneck.
    pub fn max_bytes_per_worker(&self) -> usize {
        self.bytes_sent.iter().copied().max().unwrap_or(0)
    }

    /// Total bytes moved across all links.
    pub fn total_bytes(&self) -> usize {
        self.bytes_sent.iter().sum()
    }
}

/// Even-ish partition of `len` into `n` contiguous chunks.
pub fn chunk_bounds(len: usize, n: usize) -> Vec<(usize, usize)> {
    assert!(n > 0);
    let base = len / n;
    let rem = len % n;
    let mut out = Vec::with_capacity(n);
    let mut start = 0;
    for c in 0..n {
        let sz = base + usize::from(c < rem);
        out.push((start, start + sz));
        start += sz;
    }
    out
}

type Msg = (usize, Vec<f32>);

/// Sum `buffers[i]` element-wise across all workers, in place, so that
/// afterwards every buffer holds the global sum. Runs one OS thread per
/// worker communicating over channels; returns the measured stats.
///
/// All buffers must have equal length. A single worker is a no-op.
///
/// ```
/// use opml_mlops::allreduce::{all_reduce, ReduceAlgo};
/// let mut grads = vec![vec![1.0, 2.0], vec![10.0, 20.0], vec![100.0, 200.0]];
/// let stats = all_reduce(&mut grads, ReduceAlgo::Ring);
/// assert_eq!(grads[0], vec![111.0, 222.0]);
/// assert_eq!(grads[1], grads[2]);
/// assert!(stats.total_bytes() > 0);
/// ```
pub fn all_reduce(buffers: &mut [Vec<f32>], algo: ReduceAlgo) -> AllReduceStats {
    let n = buffers.len();
    assert!(n > 0, "all_reduce with zero workers");
    let len = buffers[0].len();
    assert!(
        buffers.iter().all(|b| b.len() == len),
        "all_reduce buffers must have equal length"
    );
    if n == 1 || len == 0 {
        return AllReduceStats {
            bytes_sent: vec![0; n],
            rounds: 0,
        };
    }
    let (txs, mut rxs): (Vec<Sender<Msg>>, Vec<Option<Receiver<Msg>>>) = (0..n)
        .map(|_| unbounded())
        .map(|(t, r)| (t, Some(r)))
        .unzip();

    let rounds = match algo {
        ReduceAlgo::Ring => 2 * (n - 1),
        ReduceAlgo::Tree => 2 * n.next_power_of_two().trailing_zeros() as usize,
        ReduceAlgo::ParameterServer => 2,
    };

    let bytes: Vec<usize> = std::thread::scope(|s| {
        let handles: Vec<_> = buffers
            .iter_mut()
            .enumerate()
            .map(|(i, buf)| {
                let txs = txs.clone();
                let rx = rxs[i].take().expect("receiver taken once");
                s.spawn(move || match algo {
                    ReduceAlgo::Ring => ring_worker(i, n, buf, &txs, &rx),
                    ReduceAlgo::Tree => tree_worker(i, n, buf, &txs, &rx),
                    ReduceAlgo::ParameterServer => ps_worker(i, n, buf, &txs, &rx),
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    AllReduceStats {
        bytes_sent: bytes,
        rounds,
    }
}

/// Ring collective for worker `i` of `n`. Sends to `(i+1) % n`, receives
/// from `(i−1) % n`.
fn ring_worker(
    i: usize,
    n: usize,
    buf: &mut [f32],
    txs: &[Sender<Msg>],
    rx: &Receiver<Msg>,
) -> usize {
    let bounds = chunk_bounds(buf.len(), n);
    let right = (i + 1) % n;
    let mut sent = 0usize;
    // Phase 1: reduce-scatter. At step s, send chunk (i−s) mod n; receive
    // and accumulate chunk (i−s−1) mod n.
    for s in 0..n - 1 {
        let send_c = (i + n - s % n) % n;
        let (lo, hi) = bounds[send_c];
        txs[right]
            .send((send_c, buf[lo..hi].to_vec()))
            .expect("ring send");
        sent += (hi - lo) * 4;
        let (recv_c, data) = rx.recv().expect("ring recv");
        debug_assert_eq!(recv_c, (i + n - (s + 1) % n) % n % n);
        let (lo, hi) = bounds[recv_c];
        for (dst, src) in buf[lo..hi].iter_mut().zip(&data) {
            *dst += src;
        }
    }
    // Worker i now owns the fully-reduced chunk (i+1) mod n.
    // Phase 2: all-gather. At step s, send chunk (i+1−s) mod n; receive
    // chunk (i−s) mod n and overwrite.
    for s in 0..n - 1 {
        let send_c = (i + 1 + n - s % n) % n;
        let (lo, hi) = bounds[send_c];
        txs[right]
            .send((send_c, buf[lo..hi].to_vec()))
            .expect("ring send");
        sent += (hi - lo) * 4;
        let (recv_c, data) = rx.recv().expect("ring recv");
        let (lo, hi) = bounds[recv_c];
        buf[lo..hi].copy_from_slice(&data);
    }
    sent
}

/// Binary-tree collective for worker `i` of `n` (handles non-powers of 2:
/// ranks ≥ the stride simply sit out rounds that don't involve them).
fn tree_worker(
    i: usize,
    n: usize,
    buf: &mut [f32],
    txs: &[Sender<Msg>],
    rx: &Receiver<Msg>,
) -> usize {
    let mut sent = 0usize;
    // Reduce up the tree.
    let mut stride = 1;
    while stride < n {
        if i % (2 * stride) == stride {
            let dst = i - stride;
            txs[dst].send((0, buf.to_vec())).expect("tree send");
            sent += buf.len() * 4;
        } else if i.is_multiple_of(2 * stride) && i + stride < n {
            let (_, data) = rx.recv().expect("tree recv");
            for (dst, src) in buf.iter_mut().zip(&data) {
                *dst += src;
            }
        }
        stride *= 2;
    }
    // Broadcast back down.
    let mut stride = n.next_power_of_two() / 2;
    while stride >= 1 {
        if i.is_multiple_of(2 * stride) && i + stride < n {
            txs[i + stride]
                .send((0, buf.to_vec()))
                .expect("tree bcast send");
            sent += buf.len() * 4;
        } else if i % (2 * stride) == stride {
            let (_, data) = rx.recv().expect("tree bcast recv");
            buf.copy_from_slice(&data);
        }
        if stride == 1 {
            break;
        }
        stride /= 2;
    }
    sent
}

/// Parameter-server collective: rank 0 is the server.
fn ps_worker(
    i: usize,
    n: usize,
    buf: &mut [f32],
    txs: &[Sender<Msg>],
    rx: &Receiver<Msg>,
) -> usize {
    let mut sent = 0usize;
    if i == 0 {
        // Receive from all workers in arrival order; tag identifies sender
        // but summation is commutative across whole buffers here because
        // every contribution covers the full range. To keep the result
        // bit-deterministic we collect then add in rank order.
        let mut contributions: Vec<(usize, Vec<f32>)> =
            (1..n).map(|_| rx.recv().expect("ps recv")).collect();
        contributions.sort_by_key(|&(rank, _)| rank);
        for (_, data) in &contributions {
            for (dst, src) in buf.iter_mut().zip(data) {
                *dst += src;
            }
        }
        for (t, tx) in txs.iter().enumerate().skip(1).take(n - 1) {
            let _ = t;
            tx.send((0, buf.to_vec())).expect("ps bcast");
            sent += buf.len() * 4;
        }
    } else {
        txs[0].send((i, buf.to_vec())).expect("ps send");
        sent += buf.len() * 4;
        let (_, data) = rx.recv().expect("ps result");
        buf.copy_from_slice(&data);
    }
    sent
}

/// Sequential reference: element-wise sum of all buffers.
pub fn sequential_sum(buffers: &[Vec<f32>]) -> Vec<f32> {
    assert!(!buffers.is_empty());
    let mut out = buffers[0].clone();
    for b in &buffers[1..] {
        for (o, x) in out.iter_mut().zip(b) {
            *o += x;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use opml_simkernel::Rng;

    fn make_buffers(n: usize, len: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|_| (0..len).map(|_| rng.range_f64(-1.0, 1.0) as f32).collect())
            .collect()
    }

    fn assert_all_equal_sum(buffers: &[Vec<f32>], expected: &[f32], tol: f32) {
        for (w, b) in buffers.iter().enumerate() {
            for (j, (&got, &want)) in b.iter().zip(expected).enumerate() {
                assert!(
                    (got - want).abs() <= tol * want.abs().max(1.0),
                    "worker {w} elem {j}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn ring_matches_sequential() {
        for n in [2, 3, 4, 5, 8] {
            let mut bufs = make_buffers(n, 1000, n as u64);
            let expected = sequential_sum(&bufs);
            all_reduce(&mut bufs, ReduceAlgo::Ring);
            assert_all_equal_sum(&bufs, &expected, 1e-4);
        }
    }

    #[test]
    fn tree_matches_sequential() {
        for n in [2, 3, 4, 6, 7, 8] {
            let mut bufs = make_buffers(n, 777, 100 + n as u64);
            let expected = sequential_sum(&bufs);
            all_reduce(&mut bufs, ReduceAlgo::Tree);
            assert_all_equal_sum(&bufs, &expected, 1e-4);
        }
    }

    #[test]
    fn parameter_server_matches_sequential() {
        for n in [2, 4, 5] {
            let mut bufs = make_buffers(n, 512, 200 + n as u64);
            let expected = sequential_sum(&bufs);
            all_reduce(&mut bufs, ReduceAlgo::ParameterServer);
            assert_all_equal_sum(&bufs, &expected, 1e-4);
        }
    }

    #[test]
    fn single_worker_noop() {
        let mut bufs = vec![vec![1.0, 2.0, 3.0]];
        let stats = all_reduce(&mut bufs, ReduceAlgo::Ring);
        assert_eq!(bufs[0], vec![1.0, 2.0, 3.0]);
        assert_eq!(stats.total_bytes(), 0);
    }

    #[test]
    fn empty_payload_noop() {
        let mut bufs: Vec<Vec<f32>> = vec![vec![], vec![], vec![]];
        let stats = all_reduce(&mut bufs, ReduceAlgo::Ring);
        assert_eq!(stats.rounds, 0);
    }

    #[test]
    fn ring_is_bandwidth_optimal() {
        // Per-worker bytes = 2·(N−1)/N · S · 4, identical for all workers.
        let len = 1200usize; // divisible by 2..=6
        for n in [2usize, 3, 4, 6] {
            let mut bufs = make_buffers(n, len, 42);
            let stats = all_reduce(&mut bufs, ReduceAlgo::Ring);
            let expected = 2 * (n - 1) * (len / n) * 4;
            for (w, &b) in stats.bytes_sent.iter().enumerate() {
                assert_eq!(b, expected, "worker {w} at n={n}");
            }
        }
    }

    #[test]
    fn parameter_server_root_is_the_bottleneck() {
        let len = 1000usize;
        let n = 8;
        let mut bufs = make_buffers(n, len, 43);
        let ps = all_reduce(&mut bufs, ReduceAlgo::ParameterServer);
        // Root sends (n−1)·S·4; leaves send S·4.
        assert_eq!(ps.bytes_sent[0], (n - 1) * len * 4);
        for &b in &ps.bytes_sent[1..] {
            assert_eq!(b, len * 4);
        }
        // Ring's bottleneck is ~2·S·4 regardless of n — strictly smaller
        // than the PS root's for n ≥ 4.
        let mut bufs2 = make_buffers(n, len, 43);
        let ring = all_reduce(&mut bufs2, ReduceAlgo::Ring);
        assert!(
            ring.max_bytes_per_worker() * 3 < ps.max_bytes_per_worker(),
            "ring {} vs ps {}",
            ring.max_bytes_per_worker(),
            ps.max_bytes_per_worker()
        );
    }

    #[test]
    fn tree_round_count_is_logarithmic() {
        let mut bufs = make_buffers(8, 64, 44);
        let stats = all_reduce(&mut bufs, ReduceAlgo::Tree);
        assert_eq!(stats.rounds, 6); // 2·log2(8)
        let mut bufs = make_buffers(16, 64, 45);
        let stats = all_reduce(&mut bufs, ReduceAlgo::Tree);
        assert_eq!(stats.rounds, 8);
    }

    #[test]
    fn chunk_bounds_partition() {
        let b = chunk_bounds(10, 3);
        assert_eq!(b, vec![(0, 4), (4, 7), (7, 10)]);
        assert_eq!(chunk_bounds(4, 4), vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        // n > len: trailing empty chunks.
        let b = chunk_bounds(2, 4);
        assert_eq!(b[2], (2, 2));
        assert_eq!(b[3], (2, 2));
    }

    #[test]
    fn ring_handles_len_smaller_than_workers() {
        let mut bufs = make_buffers(5, 3, 46);
        let expected = sequential_sum(&bufs);
        all_reduce(&mut bufs, ReduceAlgo::Ring);
        assert_all_equal_sum(&bufs, &expected, 1e-5);
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let a = {
            let mut bufs = make_buffers(4, 257, 47);
            all_reduce(&mut bufs, ReduceAlgo::Ring);
            bufs
        };
        let b = {
            let mut bufs = make_buffers(4, 257, 47);
            all_reduce(&mut bufs, ReduceAlgo::Ring);
            bufs
        };
        assert_eq!(a, b, "ring all-reduce must be bit-deterministic");
    }
}
