//! A Ray-like distributed task cluster — the Unit 5 lab's second part:
//! "students deployed a Ray training cluster … define resource
//! requirements for training jobs, modify a training script to integrate
//! Ray Train for distributed execution and fault tolerance, and use Ray
//! Tune for hyperparameter search" (§3.5).
//!
//! Implemented for real over threads:
//!
//! * [`RayCluster`] — N workers with CPU/GPU capacities executing
//!   resource-annotated tasks from a shared queue (work stealing via one
//!   crossbeam channel per resource class);
//! * **fault tolerance** — tasks carry a deterministic failure
//!   injection; a failed task is retried (on any worker) up to its
//!   budget, Ray-style;
//! * [`tune`] — Ray-Tune-like random search over real model training,
//!   with ASHA-style successive-halving early stopping, executed on the
//!   cluster and logged to an [`crate::tracking::ExperimentTracker`].

use crate::model::{train_epoch, Dataset, Mlp, Sgd};
use crate::tracking::{ExperimentTracker, RunStatus};
use crossbeam::channel::{unbounded, Receiver, Sender};
use opml_simkernel::{split_seed, Rng};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Resources one task needs (Ray's `num_cpus`/`num_gpus` annotations).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskResources {
    /// CPU cores.
    pub cpus: u32,
    /// GPUs.
    pub gpus: u32,
}

/// Outcome of one task execution attempt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TaskOutcome {
    /// Finished, with a scalar result (e.g. final loss).
    Done(f64),
    /// The worker "died" during this attempt (injected fault).
    WorkerFailure,
}

/// A schedulable task.
pub struct RayTask {
    /// Task id.
    pub id: u64,
    /// Resource annotation.
    pub resources: TaskResources,
    /// Attempts allowed (1 = no retry).
    pub max_attempts: u32,
    /// The work. Receives the attempt number (failure injection keys off
    /// it, making retries deterministic).
    pub run: Box<dyn Fn(u32) -> TaskOutcome + Send + Sync>,
}

/// Result record for a finished task.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskRecord {
    /// Task id.
    pub id: u64,
    /// Attempts used.
    pub attempts: u32,
    /// Final value (None if the task exhausted its attempts).
    pub value: Option<f64>,
    /// Worker that completed (or last tried) it.
    pub worker: usize,
}

/// A worker's capacity.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WorkerSpec {
    /// CPU cores on this worker.
    pub cpus: u32,
    /// GPUs on this worker.
    pub gpus: u32,
}

/// The cluster.
pub struct RayCluster {
    workers: Vec<WorkerSpec>,
}

impl RayCluster {
    /// A cluster from explicit worker shapes.
    pub fn new(workers: Vec<WorkerSpec>) -> Self {
        assert!(!workers.is_empty());
        RayCluster { workers }
    }

    /// The Unit 5 lab's two-GPU training cluster.
    pub fn lab_cluster() -> Self {
        RayCluster::new(vec![
            WorkerSpec { cpus: 8, gpus: 1 },
            WorkerSpec { cpus: 8, gpus: 1 },
        ])
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Execute tasks to completion with retries; returns one record per
    /// task (in task-id order).
    ///
    /// Scheduling: each worker thread pulls from a shared queue and skips
    /// (requeues) tasks whose resources it cannot satisfy. A task that
    /// fits **no** worker panics — the lab teaches declaring resources
    /// that the cluster actually has.
    pub fn execute(&self, tasks: Vec<RayTask>) -> Vec<TaskRecord> {
        for t in &tasks {
            assert!(
                self.workers
                    .iter()
                    .any(|w| w.cpus >= t.resources.cpus && w.gpus >= t.resources.gpus),
                "task {} requests {:?} but no worker satisfies it",
                t.id,
                t.resources
            );
        }
        let n_tasks = tasks.len();
        type Queued = (RayTask, u32);
        let (tx, rx): (Sender<Queued>, Receiver<Queued>) = unbounded();
        for t in tasks {
            tx.send((t, 1)).expect("queue open");
        }
        let (done_tx, done_rx) = unbounded::<TaskRecord>();
        let remaining = Arc::new(AtomicU32::new(n_tasks as u32));

        std::thread::scope(|s| {
            for (widx, spec) in self.workers.iter().enumerate() {
                let rx = rx.clone();
                let tx = tx.clone();
                let done_tx = done_tx.clone();
                let remaining = Arc::clone(&remaining);
                let spec = *spec;
                s.spawn(move || loop {
                    if remaining.load(Ordering::SeqCst) == 0 {
                        return;
                    }
                    let Ok((task, attempt)) = rx.recv_timeout(std::time::Duration::from_millis(5))
                    else {
                        continue;
                    };
                    if task.resources.cpus > spec.cpus || task.resources.gpus > spec.gpus {
                        // Doesn't fit here; hand it back for another worker.
                        tx.send((task, attempt)).expect("queue open");
                        continue;
                    }
                    match (task.run)(attempt) {
                        TaskOutcome::Done(v) => {
                            done_tx
                                .send(TaskRecord {
                                    id: task.id,
                                    attempts: attempt,
                                    value: Some(v),
                                    worker: widx,
                                })
                                .expect("collector open");
                            remaining.fetch_sub(1, Ordering::SeqCst);
                        }
                        TaskOutcome::WorkerFailure => {
                            if attempt < task.max_attempts {
                                tx.send((task, attempt + 1)).expect("queue open");
                            } else {
                                done_tx
                                    .send(TaskRecord {
                                        id: task.id,
                                        attempts: attempt,
                                        value: None,
                                        worker: widx,
                                    })
                                    .expect("collector open");
                                remaining.fetch_sub(1, Ordering::SeqCst);
                            }
                        }
                    }
                });
            }
            drop(done_tx);
            let mut records: Vec<TaskRecord> = done_rx.iter().take(n_tasks).collect();
            records.sort_by_key(|r| r.id);
            records
        })
    }
}

// -------------------------------------------------------------- Ray Tune

/// One hyperparameter trial.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trial {
    /// Trial index.
    pub id: u64,
    /// Learning rate.
    pub lr: f32,
    /// Momentum.
    pub momentum: f32,
    /// Batch size.
    pub batch_size: usize,
    /// Hidden width.
    pub hidden: usize,
}

/// Result of a tuning run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuneReport {
    /// Best trial.
    pub best: Trial,
    /// Best validation accuracy.
    pub best_accuracy: f64,
    /// Trials stopped early by the ASHA rung.
    pub early_stopped: usize,
    /// Total trials.
    pub trials: usize,
}

/// Random-search + successive-halving hyperparameter tuning of the
/// food-11 stand-in model, executed as cluster tasks and logged to the
/// tracker.
///
/// Each trial trains `rung_epochs` epochs, reports, and only the top
/// half (by validation accuracy) continues for `final_epochs` more —
/// a one-rung ASHA.
pub fn tune(
    cluster: &RayCluster,
    tracker: &ExperimentTracker,
    data: &Dataset,
    n_trials: usize,
    rung_epochs: usize,
    final_epochs: usize,
    seed: u64,
) -> TuneReport {
    assert!(n_trials >= 2);
    let mut rng = Rng::new(seed);
    let trials: Vec<Trial> = (0..n_trials as u64)
        .map(|id| Trial {
            id,
            lr: *rng.choose(&[0.01f32, 0.03, 0.05, 0.1, 0.2]),
            momentum: *rng.choose(&[0.0f32, 0.8, 0.9]),
            batch_size: *rng.choose(&[16usize, 32, 64]),
            hidden: *rng.choose(&[16usize, 32, 48]),
        })
        .collect();
    let (train, val) = data.split(0.8, split_seed(seed, 1));
    let train = Arc::new(train);
    let val = Arc::new(val);

    fn run_trial(
        trial: &Trial,
        epochs: usize,
        train: &Dataset,
        val: &Dataset,
        seed: u64,
    ) -> (f64, Mlp) {
        let mut trng = Rng::new(split_seed(seed, 100 + trial.id));
        let mut model = Mlp::new(&[train.x.cols(), trial.hidden, train.classes], &mut trng);
        let mut opt = Sgd::new(trial.lr, trial.momentum);
        for _ in 0..epochs {
            train_epoch(&mut model, train, &mut opt, trial.batch_size, &mut trng);
        }
        (val.accuracy(&mut model), model)
    }

    // Rung 1: all trials, short budget, as cluster tasks.
    let tasks: Vec<RayTask> = trials
        .iter()
        .map(|t| {
            let trial = t.clone();
            let train = Arc::clone(&train);
            let val = Arc::clone(&val);
            RayTask {
                id: t.id,
                resources: TaskResources { cpus: 2, gpus: 1 },
                max_attempts: 2,
                run: Box::new(move |_| {
                    TaskOutcome::Done(run_trial(&trial, rung_epochs, &train, &val, seed).0)
                }),
            }
        })
        .collect();
    let rung = cluster.execute(tasks);
    let mut scored: Vec<(f64, &Trial)> = rung
        .iter()
        .map(|r| {
            (
                r.value.expect("trials do not fail here"),
                &trials[r.id as usize],
            )
        })
        .collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("accuracy finite"));
    let survivors: Vec<&Trial> = scored[..n_trials.div_ceil(2)]
        .iter()
        .map(|&(_, t)| t)
        .collect();
    let early_stopped = n_trials - survivors.len();

    // Rung 2: survivors train to the full budget; tracked.
    let mut best: Option<(f64, Trial)> = None;
    for t in survivors {
        let run_id = tracker.start_run("ray-tune");
        tracker.log_param(run_id, "lr", &t.lr.to_string());
        tracker.log_param(run_id, "momentum", &t.momentum.to_string());
        tracker.log_param(run_id, "batch_size", &t.batch_size.to_string());
        tracker.log_param(run_id, "hidden", &t.hidden.to_string());
        let (acc, _) = run_trial(t, rung_epochs + final_epochs, &train, &val, seed);
        tracker.log_metric(run_id, "val_acc", (rung_epochs + final_epochs) as u64, acc);
        tracker.end_run(run_id, RunStatus::Finished);
        if best.as_ref().is_none_or(|(b, _)| acc > *b) {
            best = Some((acc, t.clone()));
        }
    }
    let (best_accuracy, best) = best.expect("at least one survivor");
    TuneReport {
        best,
        best_accuracy,
        early_stopped,
        trials: n_trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn quick_task(id: u64, value: f64) -> RayTask {
        RayTask {
            id,
            resources: TaskResources { cpus: 1, gpus: 0 },
            max_attempts: 1,
            run: Box::new(move |_| TaskOutcome::Done(value)),
        }
    }

    #[test]
    fn executes_every_task_once() {
        let cluster = RayCluster::new(vec![WorkerSpec { cpus: 4, gpus: 0 }; 3]);
        let tasks: Vec<RayTask> = (0..50).map(|i| quick_task(i, i as f64)).collect();
        let records = cluster.execute(tasks);
        assert_eq!(records.len(), 50);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert_eq!(r.value, Some(i as f64));
            assert_eq!(r.attempts, 1);
        }
    }

    #[test]
    fn gpu_tasks_only_run_on_gpu_workers() {
        let cluster = RayCluster::new(vec![
            WorkerSpec { cpus: 8, gpus: 0 }, // CPU-only
            WorkerSpec { cpus: 4, gpus: 1 }, // the only GPU worker
        ]);
        let tasks: Vec<RayTask> = (0..12)
            .map(|i| RayTask {
                id: i,
                resources: TaskResources { cpus: 1, gpus: 1 },
                max_attempts: 1,
                run: Box::new(|_| TaskOutcome::Done(1.0)),
            })
            .collect();
        let records = cluster.execute(tasks);
        assert!(
            records.iter().all(|r| r.worker == 1),
            "GPU task on CPU worker"
        );
    }

    #[test]
    #[should_panic(expected = "no worker satisfies")]
    fn impossible_resources_rejected() {
        let cluster = RayCluster::new(vec![WorkerSpec { cpus: 2, gpus: 0 }]);
        cluster.execute(vec![RayTask {
            id: 0,
            resources: TaskResources { cpus: 1, gpus: 4 },
            max_attempts: 1,
            run: Box::new(|_| TaskOutcome::Done(0.0)),
        }]);
    }

    #[test]
    fn fault_tolerance_retries_to_success() {
        let cluster = RayCluster::new(vec![WorkerSpec { cpus: 2, gpus: 0 }; 2]);
        // Fails on attempts 1 and 2, succeeds on 3.
        let tasks = vec![RayTask {
            id: 0,
            resources: TaskResources { cpus: 1, gpus: 0 },
            max_attempts: 5,
            run: Box::new(|attempt| {
                if attempt < 3 {
                    TaskOutcome::WorkerFailure
                } else {
                    TaskOutcome::Done(7.0)
                }
            }),
        }];
        let records = cluster.execute(tasks);
        assert_eq!(records[0].attempts, 3);
        assert_eq!(records[0].value, Some(7.0));
    }

    #[test]
    fn exhausted_retries_reported_as_failed() {
        let cluster = RayCluster::new(vec![WorkerSpec { cpus: 2, gpus: 0 }]);
        let tasks = vec![RayTask {
            id: 0,
            resources: TaskResources { cpus: 1, gpus: 0 },
            max_attempts: 2,
            run: Box::new(|_| TaskOutcome::WorkerFailure),
        }];
        let records = cluster.execute(tasks);
        assert_eq!(records[0].value, None);
        assert_eq!(records[0].attempts, 2);
    }

    #[test]
    fn work_is_actually_distributed() {
        static COUNT: AtomicUsize = AtomicUsize::new(0);
        let cluster = RayCluster::new(vec![WorkerSpec { cpus: 2, gpus: 0 }; 4]);
        let tasks: Vec<RayTask> = (0..40)
            .map(|i| RayTask {
                id: i,
                resources: TaskResources { cpus: 1, gpus: 0 },
                max_attempts: 1,
                run: Box::new(|_| {
                    COUNT.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    TaskOutcome::Done(0.0)
                }),
            })
            .collect();
        let records = cluster.execute(tasks);
        assert_eq!(COUNT.load(Ordering::SeqCst), 40);
        // More than one worker participated.
        let mut workers: Vec<usize> = records.iter().map(|r| r.worker).collect();
        workers.sort_unstable();
        workers.dedup();
        assert!(workers.len() > 1, "all tasks ran on one worker");
    }

    #[test]
    fn tune_finds_a_good_configuration() {
        let cluster = RayCluster::lab_cluster();
        let tracker = ExperimentTracker::new();
        let data = Dataset::blobs(330, 8, 11, 0.6, 300);
        let report = tune(&cluster, &tracker, &data, 8, 5, 15, 301);
        assert_eq!(report.trials, 8);
        assert_eq!(report.early_stopped, 4);
        assert!(report.best_accuracy > 0.85, "best {}", report.best_accuracy);
        // Survivor runs are tracked with their hyperparameters.
        let runs = tracker.runs_in("ray-tune");
        assert_eq!(runs.len(), 4);
        assert!(runs.iter().all(|r| r.params.contains_key("lr")));
        // The tracker's best-run agrees with the report.
        let best = tracker
            .best_run("ray-tune", "val_acc", true)
            .expect("runs exist");
        assert!(
            (best.last_metric("val_acc").expect("logged") - report.best_accuracy).abs() < 1e-12
        );
    }

    #[test]
    fn tune_is_deterministic() {
        let cluster = RayCluster::lab_cluster();
        let data = Dataset::blobs(220, 8, 11, 0.6, 302);
        let a = tune(&cluster, &ExperimentTracker::new(), &data, 6, 4, 8, 303);
        let b = tune(&cluster, &ExperimentTracker::new(), &data, 6, 4, 8, 303);
        assert_eq!(a.best_accuracy, b.best_accuracy);
        assert_eq!(a.best.id, b.best.id);
    }
}
