//! Data systems — the Unit 8 lecture's three pillars (§3.8): **batch ETL**
//! pipelines, the **broker–producer–consumer** streaming model, and a
//! **feature store** that unifies batch and streaming features for
//! training and inference.

use crossbeam::channel::{bounded, Receiver, Sender};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::thread;

/// A raw data record flowing through pipelines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Entity key (e.g. user or photo id).
    pub entity: u64,
    /// Event timestamp (ms).
    pub ts_ms: u64,
    /// Feature vector (possibly dirty before ETL).
    pub features: Vec<f64>,
    /// Optional label.
    pub label: Option<u32>,
}

// -------------------------------------------------------------------- ETL

/// A batch ETL pipeline: an ordered list of named transform stages.
/// A named batch-transform stage.
type Stage = (
    String,
    Box<dyn Fn(Vec<Record>) -> Vec<Record> + Send + Sync>,
);

#[derive(Default)]
pub struct EtlPipeline {
    stages: Vec<Stage>,
}

impl std::fmt::Debug for EtlPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EtlPipeline")
            .field(
                "stages",
                &self.stages.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl EtlPipeline {
    /// Empty pipeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a stage.
    pub fn stage(
        mut self,
        name: &str,
        f: impl Fn(Vec<Record>) -> Vec<Record> + Send + Sync + 'static,
    ) -> Self {
        self.stages.push((name.to_string(), Box::new(f)));
        self
    }

    /// Run the batch through every stage; returns the output and the
    /// per-stage row counts (the lineage the lab logs).
    pub fn run(&self, input: Vec<Record>) -> (Vec<Record>, Vec<(String, usize)>) {
        let mut rows = input;
        let mut lineage = vec![("input".to_string(), rows.len())];
        for (name, f) in &self.stages {
            rows = f(rows);
            lineage.push((name.clone(), rows.len()));
        }
        (rows, lineage)
    }
}

/// Standard cleaning stage: drop records with non-finite features or
/// missing labels.
pub fn drop_invalid(rows: Vec<Record>) -> Vec<Record> {
    rows.into_iter()
        .filter(|r| r.label.is_some() && r.features.iter().all(|x| x.is_finite()))
        .collect()
}

/// Fit feature-wise mean/std on a batch (for a normalize stage). Returns
/// `(means, stds)`; stds of constant features are 1 to avoid division by
/// zero.
pub fn fit_normalizer(rows: &[Record]) -> (Vec<f64>, Vec<f64>) {
    assert!(!rows.is_empty(), "cannot fit a normalizer on no rows");
    let dim = rows[0].features.len();
    let n = rows.len() as f64;
    let mut means = vec![0.0; dim];
    for r in rows {
        for (m, &x) in means.iter_mut().zip(&r.features) {
            *m += x / n;
        }
    }
    let mut vars = vec![0.0; dim];
    for r in rows {
        for ((v, &m), &x) in vars.iter_mut().zip(&means).zip(&r.features) {
            *v += (x - m) * (x - m) / n;
        }
    }
    let stds = vars
        .into_iter()
        .map(|v| if v > 1e-12 { v.sqrt() } else { 1.0 })
        .collect();
    (means, stds)
}

/// Apply a fitted normalizer.
pub fn normalize(rows: Vec<Record>, means: &[f64], stds: &[f64]) -> Vec<Record> {
    rows.into_iter()
        .map(|mut r| {
            for ((x, &m), &s) in r.features.iter_mut().zip(means).zip(stds) {
                *x = (*x - m) / s;
            }
            r
        })
        .collect()
}

// -------------------------------------------------------------- streaming

/// A topic-based message broker over bounded channels (the
/// broker–producer–consumer model from the lecture). Each topic has one
/// queue; consumers in the same group share it (work-queue semantics).
#[derive(Debug)]
pub struct Broker {
    topics: HashMap<String, (Sender<Record>, Receiver<Record>)>,
    capacity: usize,
}

impl Broker {
    /// Broker with per-topic queue capacity (backpressure bound).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Broker {
            topics: HashMap::new(),
            capacity,
        }
    }

    /// Create (or get) a topic.
    pub fn topic(&mut self, name: &str) {
        let cap = self.capacity;
        self.topics
            .entry(name.to_string())
            .or_insert_with(|| bounded(cap));
    }

    /// A producer handle for a topic.
    pub fn producer(&self, topic: &str) -> Sender<Record> {
        self.topics.get(topic).expect("unknown topic").0.clone()
    }

    /// A consumer handle for a topic (consumers sharing the handle form a
    /// consumer group: each record is delivered to exactly one of them).
    pub fn consumer(&self, topic: &str) -> Receiver<Record> {
        self.topics.get(topic).expect("unknown topic").1.clone()
    }

    /// Drop the broker's own ends of a topic so consumers see EOF once
    /// producers finish.
    pub fn seal(&mut self, topic: &str) {
        self.topics.remove(topic);
    }
}

/// Run a complete streaming job: `producers` threads each emit their
/// records to the topic; `consumers` threads drain it, applying `f` to
/// each record; returns every processed record (order unspecified across
/// consumers, so the caller sorts if needed).
pub fn run_streaming_job(
    records_per_producer: Vec<Vec<Record>>,
    consumers: usize,
    f: impl Fn(Record) -> Record + Send + Sync + Copy,
) -> Vec<Record> {
    assert!(consumers > 0);
    let mut broker = Broker::new(64);
    broker.topic("events");
    let rx = broker.consumer("events");
    let txs: Vec<Sender<Record>> = records_per_producer
        .iter()
        .map(|_| broker.producer("events"))
        .collect();
    broker.seal("events");
    thread::scope(|s| {
        for (tx, records) in txs.into_iter().zip(records_per_producer) {
            s.spawn(move || {
                for r in records {
                    tx.send(r).expect("consumer hung up");
                }
                drop(tx);
            });
        }
        let handles: Vec<_> = (0..consumers)
            .map(|_| {
                let rx = rx.clone();
                s.spawn(move || {
                    let mut out = Vec::new();
                    while let Ok(r) = rx.recv() {
                        out.push(f(r));
                    }
                    out
                })
            })
            .collect();
        drop(rx);
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("consumer panicked"))
            .collect()
    })
}

// ----------------------------------------------------------- feature store

/// A feature store with an offline (historical, point-in-time correct)
/// view for training and an online (latest-value) view for inference.
#[derive(Debug, Default)]
pub struct FeatureStore {
    offline: Vec<Record>,
    online: HashMap<u64, Vec<f64>>,
}

impl FeatureStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingest a batch into the offline store (kept sorted by `(entity,
    /// ts)` for point-in-time queries).
    pub fn ingest_batch(&mut self, rows: Vec<Record>) {
        self.offline.extend(rows);
        self.offline.sort_by_key(|r| (r.entity, r.ts_ms));
    }

    /// Point-in-time lookup for training: the latest features for
    /// `entity` with `ts_ms <= as_of` (prevents label leakage from the
    /// future — the training/serving-skew lesson).
    pub fn get_historical(&self, entity: u64, as_of: u64) -> Option<&Record> {
        self.offline
            .iter()
            .filter(|r| r.entity == entity && r.ts_ms <= as_of)
            .max_by_key(|r| r.ts_ms)
    }

    /// Materialize the online view: latest features per entity.
    pub fn materialize(&mut self) {
        self.online.clear();
        for r in &self.offline {
            // offline is sorted by (entity, ts) — later rows overwrite.
            self.online.insert(r.entity, r.features.clone());
        }
    }

    /// Online lookup for serving.
    pub fn get_online(&self, entity: u64) -> Option<&Vec<f64>> {
        self.online.get(&entity)
    }

    /// Number of offline rows.
    pub fn offline_len(&self) -> usize {
        self.offline.len()
    }

    /// Number of online entities.
    pub fn online_len(&self) -> usize {
        self.online.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(entity: u64, ts: u64, f0: f64, label: Option<u32>) -> Record {
        Record {
            entity,
            ts_ms: ts,
            features: vec![f0, f0 * 2.0],
            label,
        }
    }

    #[test]
    fn etl_pipeline_lineage() {
        let pipeline = EtlPipeline::new()
            .stage("drop_invalid", drop_invalid)
            .stage("double", |rows| {
                rows.into_iter()
                    .map(|mut r| {
                        for x in &mut r.features {
                            *x *= 2.0;
                        }
                        r
                    })
                    .collect()
            });
        let input = vec![
            rec(1, 0, 1.0, Some(0)),
            rec(2, 0, f64::NAN, Some(1)), // dropped: NaN
            rec(3, 0, 2.0, None),         // dropped: no label
            rec(4, 0, 3.0, Some(1)),
        ];
        let (out, lineage) = pipeline.run(input);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].features[0], 2.0);
        assert_eq!(
            lineage,
            vec![
                ("input".to_string(), 4),
                ("drop_invalid".to_string(), 2),
                ("double".to_string(), 2)
            ]
        );
    }

    #[test]
    fn normalizer_fit_transform() {
        let rows = vec![rec(1, 0, 0.0, Some(0)), rec(2, 0, 10.0, Some(0))];
        let (means, stds) = fit_normalizer(&rows);
        assert_eq!(means, vec![5.0, 10.0]);
        let out = normalize(rows, &means, &stds);
        assert!((out[0].features[0] + 1.0).abs() < 1e-9);
        assert!((out[1].features[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_feature_normalizes_safely() {
        let rows = vec![rec(1, 0, 7.0, Some(0)), rec(2, 0, 7.0, Some(0))];
        let (means, stds) = fit_normalizer(&rows);
        assert_eq!(stds, vec![1.0, 1.0]);
        let out = normalize(rows, &means, &stds);
        assert_eq!(out[0].features[0], 0.0);
    }

    #[test]
    fn streaming_delivers_each_record_exactly_once() {
        // 3 producers × 100 records, 4 consumers in one group.
        let batches: Vec<Vec<Record>> = (0..3)
            .map(|p| {
                (0..100)
                    .map(|i| rec(p * 1000 + i, i, i as f64, Some(0)))
                    .collect()
            })
            .collect();
        let out = run_streaming_job(batches, 4, |mut r| {
            r.features[0] += 1.0;
            r
        });
        assert_eq!(out.len(), 300);
        let mut entities: Vec<u64> = out.iter().map(|r| r.entity).collect();
        entities.sort_unstable();
        entities.dedup();
        assert_eq!(entities.len(), 300, "duplicate or lost deliveries");
        // Transform applied to every record.
        assert!(out.iter().all(|r| r.features[0] >= 1.0));
    }

    #[test]
    fn streaming_single_consumer_preserves_per_producer_order() {
        let batches = vec![(0..50).map(|i| rec(i, i, i as f64, Some(0))).collect()];
        let out = run_streaming_job(batches, 1, |r| r);
        let ts: Vec<u64> = out.iter().map(|r| r.ts_ms).collect();
        assert_eq!(ts, (0..50).collect::<Vec<_>>(), "FIFO violated");
    }

    #[test]
    fn feature_store_point_in_time() {
        let mut fs = FeatureStore::new();
        fs.ingest_batch(vec![
            rec(1, 100, 1.0, None),
            rec(1, 200, 2.0, None),
            rec(1, 300, 3.0, None),
            rec(2, 150, 9.0, None),
        ]);
        // Training query at t=250 must NOT see the t=300 row.
        let r = fs.get_historical(1, 250).unwrap();
        assert_eq!(r.features[0], 2.0);
        assert_eq!(fs.get_historical(1, 99), None);
        assert_eq!(fs.get_historical(42, 1000), None);
    }

    #[test]
    fn online_view_serves_latest() {
        let mut fs = FeatureStore::new();
        fs.ingest_batch(vec![rec(1, 100, 1.0, None), rec(1, 300, 3.0, None)]);
        fs.materialize();
        assert_eq!(fs.get_online(1).unwrap()[0], 3.0);
        assert_eq!(fs.online_len(), 1);
        assert_eq!(fs.offline_len(), 2);
        // New batch + re-materialize updates the online view.
        fs.ingest_batch(vec![rec(1, 400, 4.0, None)]);
        fs.materialize();
        assert_eq!(fs.get_online(1).unwrap()[0], 4.0);
    }

    #[test]
    fn training_serving_consistency() {
        // The value served online equals the latest point-in-time value —
        // the skew the feature store exists to prevent.
        let mut fs = FeatureStore::new();
        fs.ingest_batch((0..20).map(|i| rec(7, i * 10, i as f64, None)).collect());
        fs.materialize();
        let online = fs.get_online(7).unwrap().clone();
        let historical = fs.get_historical(7, u64::MAX).unwrap().features.clone();
        assert_eq!(online, historical);
    }
}
