//! Training-side memory/precision techniques from the Unit 4 lecture:
//! reduced/mixed precision (bfloat16), gradient accumulation, LoRA
//! parameter-efficient fine-tuning, and the training-memory model that
//! motivates all of them ("training models with billions of parameters …
//! beyond the memory limitations of a single GPU", §3.4).

use crate::model::{softmax_cross_entropy, Dataset, Mlp, Sgd};
use crate::tensor::Matrix;
use opml_simkernel::Rng;
use serde::{Deserialize, Serialize};

// --------------------------------------------------------------- bfloat16

/// Round an `f32` to the nearest `bfloat16` value (round-to-nearest-even),
/// returned as `f32`. bfloat16 keeps the f32 exponent and truncates the
/// mantissa to 7 bits — exactly why it trains stably where fp16 overflows.
#[inline]
pub fn bf16_round(x: f32) -> f32 {
    let bits = x.to_bits();
    // Round-to-nearest-even on the low 16 bits.
    let rounding_bias = 0x7FFF + ((bits >> 16) & 1);
    f32::from_bits(((bits.wrapping_add(rounding_bias)) >> 16) << 16)
}

/// Round a whole buffer to bfloat16 precision, in place.
pub fn bf16_round_slice(xs: &mut [f32]) {
    for x in xs {
        *x = bf16_round(*x);
    }
}

/// One mixed-precision training epoch: forward/backward run on
/// bf16-rounded weights, the fp32 master copy receives the update
/// (the standard mixed-precision recipe).
pub fn train_epoch_bf16(
    model: &mut Mlp,
    data: &Dataset,
    opt: &mut Sgd,
    batch_size: usize,
    rng: &mut Rng,
) -> (f32, f64) {
    assert!(batch_size > 0);
    let mut idx: Vec<usize> = (0..data.len()).collect();
    rng.shuffle(&mut idx);
    let mut total_loss = 0.0;
    let mut batches = 0;
    for chunk in idx.chunks(batch_size) {
        let master = model.params_flat();
        let mut low = master.clone();
        bf16_round_slice(&mut low);
        model.set_params_flat(&low);
        let batch = data.subset(chunk);
        let logits = model.forward(&batch.x);
        let (loss, dlogits) = softmax_cross_entropy(&logits, &batch.y);
        model.backward(&dlogits);
        // Restore the fp32 master before the optimizer update.
        let grads = model.grads_flat();
        model.set_params_flat(&master);
        model.set_grads_flat(&grads);
        opt.step(model);
        total_loss += loss;
        batches += 1;
    }
    (total_loss / batches.max(1) as f32, data.accuracy(model))
}

// ------------------------------------------------- training-memory model

/// Bytes per element for a training dtype.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Dtype {
    /// 32-bit float.
    F32,
    /// bfloat16 / fp16.
    Bf16,
    /// 8-bit quantized (QLoRA-style frozen base).
    Int8,
    /// 4-bit quantized (QLoRA NF4-style frozen base).
    Int4,
}

impl Dtype {
    /// Bytes per parameter.
    pub fn bytes(self) -> f64 {
        match self {
            Dtype::F32 => 4.0,
            Dtype::Bf16 => 2.0,
            Dtype::Int8 => 1.0,
            Dtype::Int4 => 0.5,
        }
    }
}

/// Configuration of a training run for the memory estimator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingMemoryConfig {
    /// Total model parameters.
    pub params: f64,
    /// Dtype the (frozen or trainable) base weights are held in.
    pub weight_dtype: Dtype,
    /// Fraction of parameters that are trainable (1.0 = full fine-tune;
    /// LoRA at rank r on a d×d layer trains ≈ 2rd/d² of it).
    pub trainable_fraction: f64,
    /// Optimizer state multiplier per trainable parameter, in f32 units
    /// (Adam keeps m and v → 2.0; SGD+momentum → 1.0; plain SGD → 0.0).
    pub optimizer_states: f64,
    /// Micro-batch size actually resident on the device.
    pub micro_batch: f64,
    /// Activation bytes per example per parameter-sqrt-ish unit; we use
    /// the common rule of thumb: activations ≈ `act_factor · params^0.5 ·
    /// hidden · batch`. To stay simple and testable we model activations
    /// as `bytes_per_example · micro_batch`.
    pub activation_bytes_per_example: f64,
    /// Number of devices the optimizer/gradient/parameter states are
    /// sharded across (FSDP/ZeRO-3); 1 = no sharding (DDP replicates).
    pub shards: u32,
}

/// Estimated peak training memory per device, in GB.
///
/// `weights + gradients(trainable, f32) + optimizer states(trainable,
/// f32) + activations(micro_batch)`, with states divided across shards.
/// Reproduces the Unit 4 story: a 13B model in f32 with Adam needs ~208
/// GB of states alone — hence bf16 + LoRA + sharding.
pub fn training_memory_gb(cfg: &TrainingMemoryConfig) -> f64 {
    let gb = 1e9;
    let trainable = cfg.params * cfg.trainable_fraction;
    let weights = cfg.params * cfg.weight_dtype.bytes();
    let grads = trainable * 4.0;
    let states = trainable * 4.0 * cfg.optimizer_states;
    let sharded = (weights + grads + states) / cfg.shards as f64;
    let activations = cfg.activation_bytes_per_example * cfg.micro_batch;
    (sharded + activations) / gb
}

impl TrainingMemoryConfig {
    /// The lab's 13-billion-parameter LLM fine-tune, full precision, Adam.
    pub fn llm_13b_full_f32() -> Self {
        TrainingMemoryConfig {
            params: 13e9,
            weight_dtype: Dtype::F32,
            trainable_fraction: 1.0,
            optimizer_states: 2.0,
            micro_batch: 1.0,
            activation_bytes_per_example: 2e9,
            shards: 1,
        }
    }

    /// The same model with the lab's single-GPU recipe: bf16 weights +
    /// LoRA (≈0.5% trainable) + gradient accumulation (micro-batch 1).
    pub fn llm_13b_qlora() -> Self {
        TrainingMemoryConfig {
            params: 13e9,
            weight_dtype: Dtype::Int4,
            trainable_fraction: 0.005,
            optimizer_states: 2.0,
            micro_batch: 1.0,
            activation_bytes_per_example: 2e9,
            shards: 1,
        }
    }
}

// ------------------------------------------------------------------ LoRA

/// A LoRA adapter around a frozen dense layer: `y = x·W_frozen +
/// (α/r)·x·A·B`, training only `A` (in×r) and `B` (r×out).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoraDense {
    /// Frozen base weights.
    pub frozen_w: Matrix,
    /// Frozen base bias.
    pub frozen_b: Vec<f32>,
    /// Low-rank factor A (in × r), trainable.
    pub a: Matrix,
    /// Low-rank factor B (r × out), trainable.
    pub b: Matrix,
    /// Scaling α.
    pub alpha: f32,
    /// Gradient of A.
    pub grad_a: Matrix,
    /// Gradient of B.
    pub grad_b: Matrix,
    #[serde(skip)]
    cache: Option<(Matrix, Matrix)>, // (x, x·A)
}

impl LoraDense {
    /// Wrap frozen weights with a rank-`r` adapter. `A` starts small and
    /// random, `B` at zero (so the adapter initially contributes nothing —
    /// the standard LoRA init).
    pub fn new(frozen_w: Matrix, frozen_b: Vec<f32>, r: usize, alpha: f32, rng: &mut Rng) -> Self {
        let (inputs, outputs) = (frozen_w.rows(), frozen_w.cols());
        LoraDense {
            a: Matrix::kaiming(inputs, r, rng),
            b: Matrix::zeros(r, outputs),
            grad_a: Matrix::zeros(inputs, r),
            grad_b: Matrix::zeros(r, outputs),
            frozen_w,
            frozen_b,
            alpha,
            cache: None,
        }
    }

    /// Rank of the adapter.
    pub fn rank(&self) -> usize {
        self.a.cols()
    }

    /// Trainable parameter count (A + B only).
    pub fn trainable_params(&self) -> usize {
        self.a.len() + self.b.len()
    }

    /// Total parameter count including frozen weights.
    pub fn total_params(&self) -> usize {
        self.frozen_w.len() + self.frozen_b.len() + self.trainable_params()
    }

    fn scaling(&self) -> f32 {
        self.alpha / self.rank() as f32
    }

    /// Forward pass.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.frozen_w);
        let xa = x.matmul(&self.a);
        let adapter = xa.matmul(&self.b);
        y.axpy(self.scaling(), &adapter);
        for r in 0..y.rows() {
            for (v, bias) in y.row_mut(r).iter_mut().zip(&self.frozen_b) {
                *v += bias;
            }
        }
        self.cache = Some((x.clone(), xa));
        y
    }

    /// Backward pass: accumulates adapter grads only; returns `dL/dx`
    /// (through both the frozen path and the adapter path).
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let (x, xa) = self.cache.as_ref().expect("backward before forward");
        let s = self.scaling();
        // grad_b += s · (x·A)ᵀ · dy
        let mut gb = xa.transpose().matmul(dy);
        gb.scale(s);
        self.grad_b.axpy(1.0, &gb);
        // grad_a += s · xᵀ · dy · Bᵀ
        let mut ga = x.transpose().matmul(&dy.matmul(&self.b.transpose()));
        ga.scale(s);
        self.grad_a.axpy(1.0, &ga);
        // dx = dy·Wᵀ + s · dy·Bᵀ·Aᵀ
        let mut dx = dy.matmul(&self.frozen_w.transpose());
        let mut adapter_dx = dy.matmul(&self.b.transpose()).matmul(&self.a.transpose());
        adapter_dx.scale(s);
        dx.axpy(1.0, &adapter_dx);
        dx
    }

    /// SGD step on the adapter factors; zeroes adapter grads.
    pub fn step(&mut self, lr: f32) {
        self.a.axpy(-lr, &self.grad_a.clone());
        self.b.axpy(-lr, &self.grad_b.clone());
        self.grad_a.fill_zero();
        self.grad_b.fill_zero();
    }

    /// Merge the adapter into the frozen weights (deployment-time fold-in)
    /// and return the resulting plain weight matrix.
    pub fn merged_weights(&self) -> Matrix {
        let mut w = self.frozen_w.clone();
        let delta = self.a.matmul(&self.b);
        w.axpy(self.scaling(), &delta);
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::train_epoch;

    #[test]
    fn bf16_is_coarser_but_close() {
        let x = std::f32::consts::PI;
        let r = bf16_round(x);
        assert_ne!(x, r);
        assert!((x - r).abs() / x < 0.01, "bf16 error too large");
        // Values exactly representable survive.
        assert_eq!(bf16_round(1.0), 1.0);
        assert_eq!(bf16_round(-2.5), -2.5);
        assert_eq!(bf16_round(0.0), 0.0);
    }

    #[test]
    fn bf16_preserves_exponent_range() {
        // fp16 would overflow at 65504; bf16 keeps the f32 exponent.
        let big = 1e30f32;
        let r = bf16_round(big);
        assert!(r.is_finite());
        assert!((r - big).abs() / big < 0.01);
    }

    #[test]
    fn bf16_training_still_converges() {
        let data = Dataset::blobs(330, 6, 11, 0.5, 21);
        let mut rng = Rng::new(22);
        let mut model = Mlp::new(&[6, 24, 11], &mut rng);
        let mut opt = Sgd::new(0.1, 0.9);
        for _ in 0..25 {
            train_epoch_bf16(&mut model, &data, &mut opt, 32, &mut rng);
        }
        let acc = data.accuracy(&mut model);
        assert!(acc > 0.85, "bf16 accuracy {acc}");
    }

    #[test]
    fn memory_model_reproduces_unit4_story() {
        // Full f32 + Adam on 13B: far beyond one A100-80GB.
        let full = training_memory_gb(&TrainingMemoryConfig::llm_13b_full_f32());
        assert!(full > 200.0, "full fine-tune estimate {full} GB");
        // The lab's QLoRA recipe fits on a single 80 GB GPU.
        let qlora = training_memory_gb(&TrainingMemoryConfig::llm_13b_qlora());
        assert!(qlora < 80.0, "QLoRA estimate {qlora} GB");
        // Sharding across 4 GPUs divides the state term.
        let mut sharded = TrainingMemoryConfig::llm_13b_full_f32();
        sharded.shards = 4;
        let per_dev = training_memory_gb(&sharded);
        assert!(per_dev < full / 2.0, "sharded {per_dev} vs full {full}");
    }

    #[test]
    fn lora_initially_identity() {
        let mut rng = Rng::new(30);
        let w = Matrix::kaiming(6, 4, &mut rng);
        let bias = vec![0.1; 4];
        let mut lora = LoraDense::new(w.clone(), bias.clone(), 2, 8.0, &mut rng);
        let x = Matrix::from_fn(5, 6, |r, c| (r + c) as f32 * 0.1);
        let y_lora = lora.forward(&x);
        // B = 0 ⇒ adapter contributes nothing at init.
        let mut y_base = x.matmul(&w);
        for r in 0..y_base.rows() {
            for (v, b) in y_base.row_mut(r).iter_mut().zip(&bias) {
                *v += b;
            }
        }
        for (a, b) in y_lora.as_slice().iter().zip(y_base.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn lora_trains_far_fewer_params() {
        let mut rng = Rng::new(31);
        let w = Matrix::kaiming(64, 64, &mut rng);
        let lora = LoraDense::new(w, vec![0.0; 64], 4, 8.0, &mut rng);
        assert_eq!(lora.trainable_params(), 64 * 4 + 4 * 64);
        assert!(
            lora.trainable_params() * 8 <= lora.total_params(),
            "LoRA should train ≤ 1/8 of parameters here"
        );
    }

    #[test]
    fn lora_adapts_a_frozen_model() {
        // Train a base layer on blobs; freeze it; shift the data; LoRA
        // fine-tuning must recover most of the lost accuracy.
        let mut rng = Rng::new(32);
        let data = Dataset::blobs(240, 5, 4, 0.4, 33);
        let mut base = Mlp::new(&[5, 4], &mut rng);
        let mut opt = Sgd::new(0.2, 0.9);
        for _ in 0..40 {
            train_epoch(&mut base, &data, &mut opt, 32, &mut rng);
        }
        assert!(data.accuracy(&mut base) > 0.9);
        let drifted = data.shifted(4.0);
        let degraded = drifted.accuracy(&mut base);
        assert!(
            degraded < 0.85,
            "shift failed to degrade the model ({degraded})"
        );
        // Wrap the (single) layer in LoRA and fine-tune on drifted data.
        let layer = &base.layers[0];
        let mut lora = LoraDense::new(layer.w.clone(), layer.b.clone(), 2, 8.0, &mut rng);
        for _ in 0..200 {
            let logits = lora.forward(&drifted.x);
            let (_, d) = softmax_cross_entropy(&logits, &drifted.y);
            lora.backward(&d);
            lora.step(0.02);
        }
        let logits = lora.forward(&drifted.x);
        let preds: Vec<usize> = (0..logits.rows())
            .map(|r| {
                logits
                    .row(r)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .unwrap()
                    .0
            })
            .collect();
        let adapted = preds.iter().zip(&drifted.y).filter(|(p, y)| p == y).count() as f64
            / drifted.len() as f64;
        assert!(
            adapted > degraded + 0.05 && adapted > 0.9,
            "LoRA adapted {adapted} vs degraded {degraded}"
        );
    }

    #[test]
    fn lora_merge_matches_adapter_forward() {
        let mut rng = Rng::new(34);
        let w = Matrix::kaiming(6, 3, &mut rng);
        let mut lora = LoraDense::new(w, vec![0.0; 3], 2, 4.0, &mut rng);
        // Give B some non-zero values so the adapter path is active.
        for v in lora.b.as_mut_slice() {
            *v = 0.3;
        }
        let x = Matrix::from_fn(4, 6, |r, c| (r * 6 + c) as f32 * 0.05);
        let y_adapter = lora.forward(&x);
        let merged = lora.merged_weights();
        let y_merged = x.matmul(&merged);
        for (a, b) in y_adapter.as_slice().iter().zip(y_merged.as_slice()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }
}
