//! Model registry with staged promotion — the Unit 3 lab substrate.
//!
//! The lab "used Argo CD to … deploy GourmetGram's staging, canary, and
//! production services" and built a pipeline "to simulate the model
//! lifecycle, including model registration and promotion" (§3.3). This
//! registry implements those semantics: versioned model artifacts, one
//! live version per stage, an auditable transition history, and rollback.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Deployment stage of a model version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stage {
    /// Registered but not deployed.
    None,
    /// Deployed to the staging environment.
    Staging,
    /// Serving a small slice of production traffic.
    Canary,
    /// Serving all production traffic.
    Production,
    /// Replaced; kept for rollback.
    Archived,
}

/// A registered model version.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelVersion {
    /// Model name (e.g. `gourmetgram-food11`).
    pub name: String,
    /// Monotonic version number within the model name.
    pub version: u32,
    /// Serialized parameters (see `tracking::params_to_artifact`).
    pub artifact: Vec<u8>,
    /// Evaluation metrics recorded at registration.
    pub metrics: BTreeMap<String, f64>,
    /// Current stage.
    pub stage: Stage,
}

/// One promotion/demotion, for the audit trail.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Transition {
    /// Model name.
    pub name: String,
    /// Version moved.
    pub version: u32,
    /// Stage before.
    pub from: Stage,
    /// Stage after.
    pub to: Stage,
    /// Monotonic sequence number (the registry's logical clock).
    pub seq: u64,
}

/// Errors from registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// Unknown model name.
    NoSuchModel,
    /// Unknown version for the model.
    NoSuchVersion,
    /// No archived predecessor to roll back to.
    NothingToRollBack,
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::NoSuchModel => write!(f, "no such model"),
            RegistryError::NoSuchVersion => write!(f, "no such version"),
            RegistryError::NothingToRollBack => write!(f, "no archived version to roll back to"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// The registry.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct ModelRegistry {
    models: BTreeMap<String, Vec<ModelVersion>>,
    history: Vec<Transition>,
    seq: u64,
}

impl ModelRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new version; returns its version number.
    pub fn register(
        &mut self,
        name: &str,
        artifact: Vec<u8>,
        metrics: BTreeMap<String, f64>,
    ) -> u32 {
        let versions = self.models.entry(name.to_string()).or_default();
        let version = versions.len() as u32 + 1;
        versions.push(ModelVersion {
            name: name.to_string(),
            version,
            artifact,
            metrics,
            stage: Stage::None,
        });
        version
    }

    /// Move a version to a stage. Promoting to a stage that already has a
    /// live version archives the incumbent (at most one version per stage,
    /// like MLflow's registry).
    pub fn transition(&mut self, name: &str, version: u32, to: Stage) -> Result<(), RegistryError> {
        let versions = self
            .models
            .get_mut(name)
            .ok_or(RegistryError::NoSuchModel)?;
        if !versions.iter().any(|v| v.version == version) {
            return Err(RegistryError::NoSuchVersion);
        }
        let mut pending: Vec<(u32, Stage, Stage)> = Vec::new();
        if matches!(to, Stage::Staging | Stage::Canary | Stage::Production) {
            for v in versions.iter_mut() {
                if v.stage == to && v.version != version {
                    pending.push((v.version, v.stage, Stage::Archived));
                    v.stage = Stage::Archived;
                }
            }
        }
        let v = versions
            .iter_mut()
            .find(|v| v.version == version)
            .expect("checked above");
        pending.push((version, v.stage, to));
        v.stage = to;
        for (ver, from, to) in pending {
            self.seq += 1;
            self.history.push(Transition {
                name: name.to_string(),
                version: ver,
                from,
                to,
                seq: self.seq,
            });
        }
        Ok(())
    }

    /// The live version in a stage, if any.
    pub fn in_stage(&self, name: &str, stage: Stage) -> Option<&ModelVersion> {
        self.models.get(name)?.iter().find(|v| v.stage == stage)
    }

    /// A specific version.
    pub fn get(&self, name: &str, version: u32) -> Option<&ModelVersion> {
        self.models.get(name)?.iter().find(|v| v.version == version)
    }

    /// Latest registered version number.
    pub fn latest_version(&self, name: &str) -> Option<u32> {
        self.models
            .get(name)
            .and_then(|v| v.last())
            .map(|v| v.version)
    }

    /// Roll production back to the most recently archived ex-production
    /// version. Returns the version now in production.
    pub fn rollback_production(&mut self, name: &str) -> Result<u32, RegistryError> {
        // Find the newest transition that archived a then-production
        // version.
        let candidate = self
            .history
            .iter()
            .rev()
            .find(|t| t.name == name && t.from == Stage::Production && t.to == Stage::Archived)
            .map(|t| t.version)
            .ok_or(RegistryError::NothingToRollBack)?;
        self.transition(name, candidate, Stage::Production)?;
        Ok(candidate)
    }

    /// Full transition history, oldest first.
    pub fn history(&self) -> &[Transition] {
        &self.history
    }

    /// All versions of a model.
    pub fn versions(&self, name: &str) -> &[ModelVersion] {
        self.models.get(name).map(|v| v.as_slice()).unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(acc: f64) -> BTreeMap<String, f64> {
        let mut m = BTreeMap::new();
        m.insert("accuracy".to_string(), acc);
        m
    }

    #[test]
    fn register_assigns_monotonic_versions() {
        let mut r = ModelRegistry::new();
        assert_eq!(r.register("m", vec![1], metrics(0.8)), 1);
        assert_eq!(r.register("m", vec![2], metrics(0.9)), 2);
        assert_eq!(r.register("other", vec![3], metrics(0.5)), 1);
        assert_eq!(r.latest_version("m"), Some(2));
    }

    #[test]
    fn promotion_archives_incumbent() {
        let mut r = ModelRegistry::new();
        r.register("m", vec![1], metrics(0.8));
        r.register("m", vec![2], metrics(0.9));
        r.transition("m", 1, Stage::Production).unwrap();
        assert_eq!(r.in_stage("m", Stage::Production).unwrap().version, 1);
        r.transition("m", 2, Stage::Production).unwrap();
        assert_eq!(r.in_stage("m", Stage::Production).unwrap().version, 2);
        assert_eq!(r.get("m", 1).unwrap().stage, Stage::Archived);
    }

    #[test]
    fn staged_rollout_path() {
        let mut r = ModelRegistry::new();
        r.register("m", vec![1], metrics(0.85));
        for stage in [Stage::Staging, Stage::Canary, Stage::Production] {
            r.transition("m", 1, stage).unwrap();
            assert_eq!(r.in_stage("m", stage).unwrap().version, 1);
        }
        // History records the whole path.
        let stages: Vec<Stage> = r.history().iter().map(|t| t.to).collect();
        assert_eq!(
            stages,
            vec![Stage::Staging, Stage::Canary, Stage::Production]
        );
    }

    #[test]
    fn rollback_restores_previous_production() {
        let mut r = ModelRegistry::new();
        r.register("m", vec![1], metrics(0.9));
        r.register("m", vec![2], metrics(0.95));
        r.transition("m", 1, Stage::Production).unwrap();
        r.transition("m", 2, Stage::Production).unwrap();
        let restored = r.rollback_production("m").unwrap();
        assert_eq!(restored, 1);
        assert_eq!(r.in_stage("m", Stage::Production).unwrap().version, 1);
        assert_eq!(r.get("m", 2).unwrap().stage, Stage::Archived);
    }

    #[test]
    fn rollback_without_predecessor_fails() {
        let mut r = ModelRegistry::new();
        r.register("m", vec![1], metrics(0.9));
        r.transition("m", 1, Stage::Production).unwrap();
        assert_eq!(
            r.rollback_production("m").unwrap_err(),
            RegistryError::NothingToRollBack
        );
    }

    #[test]
    fn errors_on_unknown_names_and_versions() {
        let mut r = ModelRegistry::new();
        assert_eq!(
            r.transition("ghost", 1, Stage::Staging).unwrap_err(),
            RegistryError::NoSuchModel
        );
        r.register("m", vec![1], metrics(0.9));
        assert_eq!(
            r.transition("m", 9, Stage::Staging).unwrap_err(),
            RegistryError::NoSuchVersion
        );
    }

    #[test]
    fn canary_and_production_coexist() {
        let mut r = ModelRegistry::new();
        r.register("m", vec![1], metrics(0.9));
        r.register("m", vec![2], metrics(0.92));
        r.transition("m", 1, Stage::Production).unwrap();
        r.transition("m", 2, Stage::Canary).unwrap();
        assert_eq!(r.in_stage("m", Stage::Production).unwrap().version, 1);
        assert_eq!(r.in_stage("m", Stage::Canary).unwrap().version, 2);
    }
}
