//! Metrics time-series store and alerting — the Unit 7 lab's "live
//! monitoring of operational metrics (e.g., latency, throughput) and
//! model-specific metrics (e.g., output distribution)" (§3.7).
//!
//! A Prometheus-style store: named series of `(t_ms, value)` points held
//! in bounded ring buffers, windowed aggregation queries, and threshold
//! alert rules evaluated over trailing windows.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Maximum points retained per series (ring-buffer retention).
const DEFAULT_RETENTION: usize = 100_000;

/// One observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Timestamp in milliseconds (monotone per series).
    pub t_ms: f64,
    /// Value.
    pub value: f64,
}

/// Bounded time series.
#[derive(Debug, Clone, Default)]
pub struct Series {
    points: VecDeque<Sample>,
    retention: usize,
}

impl Series {
    fn new(retention: usize) -> Self {
        Series {
            points: VecDeque::new(),
            retention,
        }
    }

    fn push(&mut self, s: Sample) {
        if let Some(last) = self.points.back() {
            assert!(s.t_ms >= last.t_ms, "series timestamps must be monotone");
        }
        if self.points.len() == self.retention {
            self.points.pop_front();
        }
        self.points.push_back(s);
    }

    /// Points with `t_ms >= since`.
    pub fn window(&self, since: f64) -> impl Iterator<Item = &Sample> {
        // Ring is time-ordered: binary-search-ish scan from the back would
        // also work; linear filter keeps it simple and is O(window).
        self.points.iter().filter(move |s| s.t_ms >= since)
    }

    /// Number of retained points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff no points retained.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// The metrics store.
#[derive(Debug, Default)]
pub struct MetricsStore {
    series: BTreeMap<String, Series>,
    retention: usize,
}

impl MetricsStore {
    /// Store with default retention.
    pub fn new() -> Self {
        MetricsStore {
            series: BTreeMap::new(),
            retention: DEFAULT_RETENTION,
        }
    }

    /// Store with custom per-series retention.
    pub fn with_retention(retention: usize) -> Self {
        assert!(retention > 0);
        MetricsStore {
            series: BTreeMap::new(),
            retention,
        }
    }

    /// Record a point.
    pub fn record(&mut self, name: &str, t_ms: f64, value: f64) {
        let retention = self.retention;
        self.series
            .entry(name.to_string())
            .or_insert_with(|| Series::new(retention))
            .push(Sample { t_ms, value });
    }

    /// A series by name.
    pub fn series(&self, name: &str) -> Option<&Series> {
        self.series.get(name)
    }

    /// Mean over the trailing window `[now − window_ms, ∞)`.
    pub fn window_mean(&self, name: &str, now: f64, window_ms: f64) -> Option<f64> {
        let s = self.series.get(name)?;
        let mut sum = 0.0;
        let mut n = 0usize;
        for p in s.window(now - window_ms) {
            sum += p.value;
            n += 1;
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Max over the trailing window.
    pub fn window_max(&self, name: &str, now: f64, window_ms: f64) -> Option<f64> {
        let s = self.series.get(name)?;
        s.window(now - window_ms)
            .map(|p| p.value)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Count of points in the trailing window.
    pub fn window_count(&self, name: &str, now: f64, window_ms: f64) -> usize {
        self.series
            .get(name)
            .map(|s| s.window(now - window_ms).count())
            .unwrap_or(0)
    }

    /// Downsample a series into fixed buckets of `bucket_ms`, returning
    /// `(bucket_start, mean)` rows — the dashboards' rollup query.
    pub fn rollup(&self, name: &str, bucket_ms: f64) -> Vec<(f64, f64)> {
        let Some(s) = self.series.get(name) else {
            return Vec::new();
        };
        assert!(bucket_ms > 0.0);
        let mut out: Vec<(f64, f64, usize)> = Vec::new();
        for p in &s.points {
            let bucket = (p.t_ms / bucket_ms).floor() * bucket_ms;
            match out.last_mut() {
                Some((b, sum, n)) if *b == bucket => {
                    *sum += p.value;
                    *n += 1;
                }
                _ => out.push((bucket, p.value, 1)),
            }
        }
        out.into_iter()
            .map(|(b, sum, n)| (b, sum / n as f64))
            .collect()
    }

    /// Registered series names.
    pub fn names(&self) -> Vec<&str> {
        self.series.keys().map(String::as_str).collect()
    }
}

/// Alert comparison direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cmp {
    /// Fire when the aggregate exceeds the threshold.
    Above,
    /// Fire when the aggregate falls below the threshold.
    Below,
}

/// A threshold alert over a trailing window mean.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AlertRule {
    /// Rule name (used in the fired alert).
    pub name: String,
    /// Metric to watch.
    pub metric: String,
    /// Threshold value.
    pub threshold: f64,
    /// Direction.
    pub cmp: Cmp,
    /// Trailing window length (ms).
    pub window_ms: f64,
    /// Minimum samples in the window before the rule may fire (avoids
    /// alerting on a single noisy point).
    pub min_samples: usize,
}

/// A fired alert.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// Rule that fired.
    pub rule: String,
    /// Metric value (window mean) at evaluation.
    pub value: f64,
    /// Evaluation time.
    pub at_ms: f64,
}

/// Evaluate rules against a store at `now`.
pub fn evaluate_alerts(store: &MetricsStore, rules: &[AlertRule], now: f64) -> Vec<Alert> {
    let mut fired = Vec::new();
    for rule in rules {
        if store.window_count(&rule.metric, now, rule.window_ms) < rule.min_samples {
            continue;
        }
        let Some(mean) = store.window_mean(&rule.metric, now, rule.window_ms) else {
            continue;
        };
        let breach = match rule.cmp {
            Cmp::Above => mean > rule.threshold,
            Cmp::Below => mean < rule.threshold,
        };
        if breach {
            fired.push(Alert {
                rule: rule.name.clone(),
                value: mean,
                at_ms: now,
            });
        }
    }
    fired
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lat_rule() -> AlertRule {
        AlertRule {
            name: "high-latency".into(),
            metric: "latency_ms".into(),
            threshold: 100.0,
            cmp: Cmp::Above,
            window_ms: 1000.0,
            min_samples: 5,
        }
    }

    #[test]
    fn record_and_window_queries() {
        let mut s = MetricsStore::new();
        for i in 0..10 {
            s.record("latency_ms", i as f64 * 100.0, 50.0 + i as f64);
        }
        assert_eq!(s.window_count("latency_ms", 900.0, 1000.0), 10);
        assert_eq!(s.window_count("latency_ms", 900.0, 200.0), 3); // t in {700,800,900}
        let mean = s.window_mean("latency_ms", 900.0, 200.0).unwrap();
        assert!((mean - 58.0).abs() < 1e-9);
        assert_eq!(s.window_max("latency_ms", 900.0, 1000.0), Some(59.0));
    }

    #[test]
    fn missing_series_queries() {
        let s = MetricsStore::new();
        assert_eq!(s.window_mean("nope", 0.0, 100.0), None);
        assert_eq!(s.window_count("nope", 0.0, 100.0), 0);
        assert!(s.rollup("nope", 10.0).is_empty());
    }

    #[test]
    fn retention_caps_memory() {
        let mut s = MetricsStore::with_retention(100);
        for i in 0..1000 {
            s.record("m", i as f64, i as f64);
        }
        let series = s.series("m").unwrap();
        assert_eq!(series.len(), 100);
        // Oldest retained point is t=900.
        assert_eq!(series.window(0.0).next().unwrap().t_ms, 900.0);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn rejects_time_travel() {
        let mut s = MetricsStore::new();
        s.record("m", 100.0, 1.0);
        s.record("m", 50.0, 1.0);
    }

    #[test]
    fn rollup_buckets_means() {
        let mut s = MetricsStore::new();
        for (t, v) in [
            (0.0, 10.0),
            (5.0, 20.0),
            (10.0, 30.0),
            (19.0, 50.0),
            (20.0, 7.0),
        ] {
            s.record("m", t, v);
        }
        let r = s.rollup("m", 10.0);
        assert_eq!(r, vec![(0.0, 15.0), (10.0, 40.0), (20.0, 7.0)]);
    }

    #[test]
    fn alert_fires_on_breach_only() {
        let mut s = MetricsStore::new();
        for i in 0..10 {
            s.record("latency_ms", i as f64 * 50.0, 80.0);
        }
        assert!(evaluate_alerts(&s, &[lat_rule()], 500.0).is_empty());
        for i in 10..20 {
            s.record("latency_ms", i as f64 * 50.0, 200.0);
        }
        let fired = evaluate_alerts(&s, &[lat_rule()], 950.0);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].rule, "high-latency");
        assert!(fired[0].value > 100.0);
    }

    #[test]
    fn alert_needs_min_samples() {
        let mut s = MetricsStore::new();
        s.record("latency_ms", 0.0, 500.0);
        s.record("latency_ms", 1.0, 500.0);
        // Mean is way over threshold but only 2 samples < min 5.
        assert!(evaluate_alerts(&s, &[lat_rule()], 10.0).is_empty());
    }

    #[test]
    fn below_alerts_for_quality_metrics() {
        let rule = AlertRule {
            name: "accuracy-collapse".into(),
            metric: "accuracy".into(),
            threshold: 0.7,
            cmp: Cmp::Below,
            window_ms: 1000.0,
            min_samples: 3,
        };
        let mut s = MetricsStore::new();
        for i in 0..5 {
            s.record("accuracy", i as f64 * 10.0, 0.5);
        }
        let fired = evaluate_alerts(&s, &[rule], 50.0);
        assert_eq!(fired.len(), 1);
    }
}
