//! Offline and online evaluation — Unit 7's first two lab parts (§3.7):
//! domain metrics and slice evaluation, template-based behavioural tests,
//! and the online modalities the lecture covers (A/B testing, canary
//! comparison, shadow deployment).

use crate::model::{Dataset, Mlp};
use opml_simkernel::stats::two_proportion_z;
use opml_simkernel::Rng;
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------- offline

/// Per-class precision/recall/F1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassMetrics {
    /// Class index.
    pub class: usize,
    /// Precision (0 when the class is never predicted).
    pub precision: f64,
    /// Recall (0 when the class has no examples).
    pub recall: f64,
    /// F1.
    pub f1: f64,
    /// Ground-truth examples of this class.
    pub support: usize,
}

/// Full offline evaluation report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalReport {
    /// Overall accuracy.
    pub accuracy: f64,
    /// Per-class metrics.
    pub per_class: Vec<ClassMetrics>,
    /// Confusion matrix `confusion[truth][predicted]`.
    pub confusion: Vec<Vec<usize>>,
}

impl EvalReport {
    /// Macro-averaged F1.
    pub fn macro_f1(&self) -> f64 {
        if self.per_class.is_empty() {
            return 0.0;
        }
        self.per_class.iter().map(|c| c.f1).sum::<f64>() / self.per_class.len() as f64
    }

    /// The class with the lowest recall — the "known failure mode" slice
    /// the lab tells students to watch.
    pub fn weakest_class(&self) -> Option<&ClassMetrics> {
        self.per_class
            .iter()
            .filter(|c| c.support > 0)
            .min_by(|a, b| a.recall.partial_cmp(&b.recall).expect("recall NaN"))
    }
}

/// Evaluate a model on a dataset.
pub fn evaluate(model: &mut Mlp, data: &Dataset) -> EvalReport {
    assert!(!data.is_empty(), "cannot evaluate on an empty dataset");
    let preds = model.predict(&data.x);
    let k = data.classes;
    let mut confusion = vec![vec![0usize; k]; k];
    for (&p, &t) in preds.iter().zip(&data.y) {
        confusion[t][p] += 1;
    }
    let correct: usize = (0..k).map(|c| confusion[c][c]).sum();
    let per_class = (0..k)
        .map(|c| {
            let tp = confusion[c][c];
            let fp: usize = (0..k).filter(|&t| t != c).map(|t| confusion[t][c]).sum();
            let fn_: usize = (0..k).filter(|&p| p != c).map(|p| confusion[c][p]).sum();
            let support = tp + fn_;
            let precision = if tp + fp == 0 {
                0.0
            } else {
                tp as f64 / (tp + fp) as f64
            };
            let recall = if support == 0 {
                0.0
            } else {
                tp as f64 / support as f64
            };
            let f1 = if precision + recall == 0.0 {
                0.0
            } else {
                2.0 * precision * recall / (precision + recall)
            };
            ClassMetrics {
                class: c,
                precision,
                recall,
                f1,
                support,
            }
        })
        .collect();
    EvalReport {
        accuracy: correct as f64 / data.len() as f64,
        per_class,
        confusion,
    }
}

/// A named slice predicate over `(label, features)`.
pub type SlicePredicate<'a> = (&'a str, Box<dyn Fn(usize, &[f32]) -> bool>);

/// Evaluate on named data slices: each slice selects example indices.
/// Returns `(slice name, accuracy, n)` rows.
pub fn evaluate_slices(
    model: &mut Mlp,
    data: &Dataset,
    slices: &[SlicePredicate<'_>],
) -> Vec<(String, f64, usize)> {
    slices
        .iter()
        .map(|(name, pred)| {
            let idx: Vec<usize> = (0..data.len())
                .filter(|&i| pred(data.y[i], data.x.row(i)))
                .collect();
            if idx.is_empty() {
                return (name.to_string(), 0.0, 0);
            }
            let slice = data.subset(&idx);
            (name.to_string(), slice.accuracy(model), idx.len())
        })
        .collect()
}

// ------------------------------------------------------------ behavioural

/// A template-based behavioural test (CheckList-style, which the lecture
/// cites): perturb inputs and assert prediction behaviour.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum BehavioralTest {
    /// Predictions must be invariant to small feature noise: the flip
    /// rate under `N(0, noise)` perturbation must not exceed
    /// `max_flip_rate`.
    NoiseInvariance {
        /// Perturbation standard deviation.
        noise: f64,
        /// Maximum tolerated prediction-flip rate.
        max_flip_rate: f64,
    },
    /// Predictions must be invariant to dropping (zeroing) each single
    /// feature, on at least `1 − max_flip_rate` of examples.
    FeatureDropout {
        /// Which feature to zero.
        feature: usize,
        /// Maximum tolerated prediction-flip rate.
        max_flip_rate: f64,
    },
    /// Duplicating an example must give the same prediction
    /// (determinism check).
    Determinism,
}

/// Result of one behavioural test.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BehavioralResult {
    /// Test description.
    pub name: String,
    /// Whether it passed.
    pub passed: bool,
    /// Measured flip rate (0 for determinism pass).
    pub flip_rate: f64,
}

/// Run a behavioural suite against a model.
pub fn run_behavioral_suite(
    model: &mut Mlp,
    data: &Dataset,
    tests: &[BehavioralTest],
    seed: u64,
) -> Vec<BehavioralResult> {
    let base = model.predict(&data.x);
    let mut rng = Rng::new(seed);
    tests
        .iter()
        .map(|t| match t {
            BehavioralTest::NoiseInvariance {
                noise,
                max_flip_rate,
            } => {
                let mut x = data.x.clone();
                for v in x.as_mut_slice() {
                    *v += rng.normal_with(0.0, *noise) as f32;
                }
                let perturbed = model.predict(&x);
                let flips = base.iter().zip(&perturbed).filter(|(a, b)| a != b).count();
                let rate = flips as f64 / base.len() as f64;
                BehavioralResult {
                    name: format!("noise-invariance(σ={noise})"),
                    passed: rate <= *max_flip_rate,
                    flip_rate: rate,
                }
            }
            BehavioralTest::FeatureDropout {
                feature,
                max_flip_rate,
            } => {
                let mut x = data.x.clone();
                for r in 0..x.rows() {
                    x.set(r, *feature, 0.0);
                }
                let perturbed = model.predict(&x);
                let flips = base.iter().zip(&perturbed).filter(|(a, b)| a != b).count();
                let rate = flips as f64 / base.len() as f64;
                BehavioralResult {
                    name: format!("feature-dropout({feature})"),
                    passed: rate <= *max_flip_rate,
                    flip_rate: rate,
                }
            }
            BehavioralTest::Determinism => {
                let again = model.predict(&data.x);
                let flips = base.iter().zip(&again).filter(|(a, b)| a != b).count();
                BehavioralResult {
                    name: "determinism".into(),
                    passed: flips == 0,
                    flip_rate: flips as f64 / base.len() as f64,
                }
            }
        })
        .collect()
}

// ---------------------------------------------------------------- online

/// A two-arm A/B test accumulating binary outcomes (e.g. "user accepted
/// the suggested tag").
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AbTest {
    /// Successes in arm A.
    pub a_success: u64,
    /// Trials in arm A.
    pub a_n: u64,
    /// Successes in arm B.
    pub b_success: u64,
    /// Trials in arm B.
    pub b_n: u64,
}

impl AbTest {
    /// Record one outcome.
    pub fn record(&mut self, arm_b: bool, success: bool) {
        if arm_b {
            self.b_n += 1;
            self.b_success += u64::from(success);
        } else {
            self.a_n += 1;
            self.a_success += u64::from(success);
        }
    }

    /// Pooled two-proportion z statistic (B − A is positive when B wins).
    pub fn z(&self) -> f64 {
        if self.a_n == 0 || self.b_n == 0 {
            return 0.0;
        }
        -two_proportion_z(self.a_success, self.a_n, self.b_success, self.b_n)
    }

    /// Whether B is significantly better than A at ~95% (z > 1.96).
    pub fn b_wins(&self) -> bool {
        self.z() > 1.96
    }

    /// Whether B is significantly worse (z < −1.96).
    pub fn b_loses(&self) -> bool {
        self.z() < -1.96
    }
}

/// Canary verdict comparing the canary's operational+quality metrics
/// against production's over the same window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CanaryVerdict {
    /// Promote the canary.
    Promote,
    /// Keep watching (insufficient data).
    Continue,
    /// Roll the canary back.
    Rollback,
}

/// Canary analysis configuration: tolerated regressions.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CanaryPolicy {
    /// Max tolerated relative latency regression (e.g. 0.2 = +20%).
    pub max_latency_regression: f64,
    /// Max tolerated absolute accuracy drop (e.g. 0.02).
    pub max_accuracy_drop: f64,
    /// Minimum samples per side before judging.
    pub min_samples: usize,
}

/// Compare canary vs production windows.
pub fn canary_analysis(
    policy: &CanaryPolicy,
    prod_latency: &[f64],
    prod_accuracy: f64,
    canary_latency: &[f64],
    canary_accuracy: f64,
) -> CanaryVerdict {
    if prod_latency.len() < policy.min_samples || canary_latency.len() < policy.min_samples {
        return CanaryVerdict::Continue;
    }
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    let lat_reg = (mean(canary_latency) - mean(prod_latency)) / mean(prod_latency).max(1e-9);
    let acc_drop = prod_accuracy - canary_accuracy;
    if lat_reg > policy.max_latency_regression || acc_drop > policy.max_accuracy_drop {
        CanaryVerdict::Rollback
    } else {
        CanaryVerdict::Promote
    }
}

/// Shadow deployment: run the challenger on mirrored traffic and measure
/// agreement with the incumbent (no user impact). Returns the agreement
/// rate in `[0, 1]`.
pub fn shadow_agreement(incumbent: &mut Mlp, challenger: &mut Mlp, traffic: &Dataset) -> f64 {
    assert!(!traffic.is_empty());
    let a = incumbent.predict(&traffic.x);
    let b = challenger.predict(&traffic.x);
    a.iter().zip(&b).filter(|(x, y)| x == y).count() as f64 / a.len() as f64
}

// --------------------------------------------------------------- fairness

/// Per-group fairness audit (the §3.7 lecture's "assessments for
/// fairness and bias" over key population slices).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FairnessReport {
    /// `(group name, accuracy, positive-prediction rate, n)` rows.
    pub groups: Vec<(String, f64, f64, usize)>,
    /// Max absolute accuracy gap between any two groups.
    pub accuracy_gap: f64,
    /// Max absolute positive-rate gap (demographic-parity distance, for
    /// the designated "positive" class).
    pub demographic_parity_gap: f64,
}

/// Audit a model across groups. `group_of` maps an example index to a
/// group name; `positive_class` defines the outcome whose rate
/// demographic parity compares.
pub fn fairness_audit(
    model: &mut Mlp,
    data: &Dataset,
    group_of: impl Fn(usize) -> String,
    positive_class: usize,
) -> FairnessReport {
    assert!(!data.is_empty());
    let preds = model.predict(&data.x);
    use std::collections::BTreeMap;
    let mut stats: BTreeMap<String, (usize, usize, usize)> = BTreeMap::new(); // (n, correct, positive)
    for (i, &pred) in preds.iter().enumerate() {
        let e = stats.entry(group_of(i)).or_insert((0, 0, 0));
        e.0 += 1;
        e.1 += usize::from(pred == data.y[i]);
        e.2 += usize::from(pred == positive_class);
    }
    let groups: Vec<(String, f64, f64, usize)> = stats
        .into_iter()
        .map(|(g, (n, c, p))| (g, c as f64 / n as f64, p as f64 / n as f64, n))
        .collect();
    type GroupRow = (String, f64, f64, usize);
    let gap = |f: &dyn Fn(&GroupRow) -> f64| -> f64 {
        let vals: Vec<f64> = groups.iter().map(f).collect();
        vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - vals.iter().cloned().fold(f64::INFINITY, f64::min)
    };
    FairnessReport {
        accuracy_gap: gap(&|r| r.1),
        demographic_parity_gap: gap(&|r| r.2),
        groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{train_epoch, Sgd};

    fn trained(seed: u64) -> (Mlp, Dataset) {
        let data = Dataset::blobs(440, 8, 11, 0.6, seed);
        let mut rng = Rng::new(seed + 1);
        let mut model = Mlp::new(&[8, 32, 11], &mut rng);
        let mut opt = Sgd::new(0.1, 0.9);
        for _ in 0..25 {
            train_epoch(&mut model, &data, &mut opt, 32, &mut rng);
        }
        (model, data)
    }

    #[test]
    fn eval_report_consistency() {
        let (mut model, data) = trained(60);
        let report = evaluate(&mut model, &data);
        assert!(report.accuracy > 0.9);
        // Confusion matrix totals match the dataset.
        let total: usize = report.confusion.iter().flatten().sum();
        assert_eq!(total, data.len());
        // Supports sum to the dataset size.
        let support: usize = report.per_class.iter().map(|c| c.support).sum();
        assert_eq!(support, data.len());
        assert!(report.macro_f1() > 0.85);
        assert!(report.weakest_class().is_some());
    }

    #[test]
    fn perfect_predictions_metrics() {
        // A dataset the model classifies perfectly ⇒ all ones.
        let (mut model, data) = trained(61);
        let preds = model.predict(&data.x);
        let idx: Vec<usize> = (0..data.len()).filter(|&i| preds[i] == data.y[i]).collect();
        let clean = data.subset(&idx);
        let report = evaluate(&mut model, &clean);
        assert!((report.accuracy - 1.0).abs() < 1e-12);
        for c in report.per_class.iter().filter(|c| c.support > 0) {
            assert!((c.recall - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn slice_evaluation() {
        let (mut model, data) = trained(62);
        let slices: Vec<SlicePredicate<'_>> = vec![
            ("all", Box::new(|_, _| true)),
            ("class-0", Box::new(|y, _| y == 0)),
            ("feature0-positive", Box::new(|_, x| x[0] > 0.0)),
            ("empty", Box::new(|_, _| false)),
        ];
        let rows = evaluate_slices(&mut model, &data, &slices);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].2, data.len());
        assert!(rows[1].2 > 0 && rows[1].1 > 0.8);
        assert_eq!(rows[3].2, 0);
    }

    #[test]
    fn behavioural_suite_passes_on_healthy_model() {
        let (mut model, data) = trained(63);
        let results = run_behavioral_suite(
            &mut model,
            &data,
            &[
                BehavioralTest::NoiseInvariance {
                    noise: 0.05,
                    max_flip_rate: 0.05,
                },
                BehavioralTest::Determinism,
            ],
            7,
        );
        for r in &results {
            assert!(r.passed, "{} failed with flip rate {}", r.name, r.flip_rate);
        }
    }

    #[test]
    fn behavioural_suite_catches_fragility() {
        let (mut model, data) = trained(64);
        // Huge noise must flip many predictions → the invariance test
        // (correctly) fails.
        let results = run_behavioral_suite(
            &mut model,
            &data,
            &[BehavioralTest::NoiseInvariance {
                noise: 5.0,
                max_flip_rate: 0.05,
            }],
            8,
        );
        assert!(!results[0].passed);
        assert!(results[0].flip_rate > 0.2);
    }

    #[test]
    fn ab_test_significance() {
        let mut ab = AbTest::default();
        for i in 0..2000 {
            ab.record(false, i % 2 == 0); // A: 50%
            ab.record(true, i % 5 != 0); // B: 80%
        }
        assert!(ab.b_wins());
        assert!(!ab.b_loses());
        let mut even = AbTest::default();
        for i in 0..2000 {
            even.record(false, i % 2 == 0);
            even.record(true, i % 2 == 0);
        }
        assert!(!even.b_wins() && !even.b_loses());
    }

    #[test]
    fn canary_rolls_back_on_latency_regression() {
        let policy = CanaryPolicy {
            max_latency_regression: 0.2,
            max_accuracy_drop: 0.02,
            min_samples: 10,
        };
        let prod: Vec<f64> = vec![100.0; 50];
        let slow: Vec<f64> = vec![140.0; 50];
        assert_eq!(
            canary_analysis(&policy, &prod, 0.9, &slow, 0.9),
            CanaryVerdict::Rollback
        );
        let ok: Vec<f64> = vec![105.0; 50];
        assert_eq!(
            canary_analysis(&policy, &prod, 0.9, &ok, 0.895),
            CanaryVerdict::Promote
        );
        // Accuracy collapse also rolls back.
        assert_eq!(
            canary_analysis(&policy, &prod, 0.9, &ok, 0.8),
            CanaryVerdict::Rollback
        );
        // Not enough data yet.
        assert_eq!(
            canary_analysis(&policy, &prod[..5], 0.9, &ok, 0.9),
            CanaryVerdict::Continue
        );
    }

    #[test]
    fn fairness_audit_detects_group_disparity() {
        let (mut model, data) = trained(66);
        // Group by a feature split correlated with model difficulty:
        // examples with feature-0 above the median vs below. A healthy
        // model should be nearly fair; corrupting one group's features
        // should open the gap.
        let median = {
            let mut v: Vec<f32> = (0..data.len()).map(|i| data.x.get(i, 0)).collect();
            v.sort_by(f32::total_cmp);
            v[v.len() / 2]
        };
        let groups: Vec<String> = (0..data.len())
            .map(|i| {
                if data.x.get(i, 0) > median {
                    "high".into()
                } else {
                    "low".into()
                }
            })
            .collect();
        let fair = fairness_audit(&mut model, &data, |i| groups[i].clone(), 0);
        assert_eq!(fair.groups.len(), 2);
        assert!(
            fair.accuracy_gap < 0.15,
            "healthy model gap {}",
            fair.accuracy_gap
        );
        // Corrupt the "low" group's inputs → disparity appears.
        let mut corrupted = data.clone();
        for (i, group) in groups.iter().enumerate() {
            if group == "low" {
                for d in 0..corrupted.x.cols() {
                    let v = corrupted.x.get(i, d);
                    corrupted.x.set(i, d, v + 3.0);
                }
            }
        }
        let unfair = fairness_audit(&mut model, &corrupted, |i| groups[i].clone(), 0);
        assert!(
            unfair.accuracy_gap > fair.accuracy_gap + 0.1,
            "corruption should open the gap: {} -> {}",
            fair.accuracy_gap,
            unfair.accuracy_gap
        );
        // Sample counts conserved.
        let n: usize = unfair.groups.iter().map(|g| g.3).sum();
        assert_eq!(n, data.len());
    }

    #[test]
    fn shadow_agreement_bounds() {
        let (mut a, data) = trained(65);
        let mut b = a.clone();
        assert_eq!(shadow_agreement(&mut a, &mut b, &data), 1.0);
        // An untrained challenger disagrees a lot.
        let mut rng = Rng::new(66);
        let mut fresh = Mlp::new(&[8, 32, 11], &mut rng);
        let agreement = shadow_agreement(&mut a, &mut fresh, &data);
        assert!(agreement < 0.6, "agreement with random model {agreement}");
    }
}
