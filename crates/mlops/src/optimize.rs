//! Model-level serving optimizations — the first part of Unit 6.
//!
//! The lab applies "graph optimizations, INT8 quantization, and use of
//! hardware-specific execution providers" (§3.6). Here the optimizations
//! are applied to the *actual* models from [`crate::model`]:
//!
//! * [`QuantizedMlp`] — symmetric per-tensor INT8 post-training
//!   quantization, with the real ¼ size reduction and a measurable (small)
//!   accuracy delta,
//! * [`fused_predict`] — operator fusion: the linear→ReLU pair executes in
//!   one pass over preallocated buffers instead of materializing each
//!   intermediate (the mechanism graph compilers exploit),
//! * [`prune_magnitude`] — magnitude pruning to a target sparsity,
//! * [`distill`] — knowledge distillation of a large teacher into a small
//!   student using soft targets.

use crate::model::{softmax_cross_entropy, Dataset, Mlp, Sgd};
use crate::tensor::Matrix;
use opml_simkernel::Rng;
use serde::{Deserialize, Serialize};

// ------------------------------------------------------------ quantization

/// A symmetric per-tensor INT8 quantized matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantizedMatrix {
    /// Dequantization scale (`f32 ≈ scale · i8`).
    pub scale: f32,
    /// Quantized values.
    pub data: Vec<i8>,
    rows: usize,
    cols: usize,
}

impl QuantizedMatrix {
    /// Quantize an f32 matrix (symmetric, per-tensor).
    pub fn quantize(m: &Matrix) -> Self {
        let max_abs = m.as_slice().iter().fold(0.0f32, |a, &x| a.max(x.abs()));
        let scale = if max_abs == 0.0 { 1.0 } else { max_abs / 127.0 };
        let data = m
            .as_slice()
            .iter()
            .map(|&x| (x / scale).round().clamp(-127.0, 127.0) as i8)
            .collect();
        QuantizedMatrix {
            scale,
            data,
            rows: m.rows(),
            cols: m.cols(),
        }
    }

    /// Reconstruct the f32 matrix.
    pub fn dequantize(&self) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|&q| q as f32 * self.scale).collect(),
        )
    }

    /// Storage bytes (1 per element + the scale).
    pub fn bytes(&self) -> usize {
        self.data.len() + 4
    }

    /// Worst-case absolute quantization error for this tensor.
    pub fn max_error_bound(&self) -> f32 {
        self.scale * 0.5
    }
}

/// An INT8-quantized MLP for inference.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantizedMlp {
    layers: Vec<(QuantizedMatrix, Vec<f32>)>, // (weights, fp32 bias)
}

impl QuantizedMlp {
    /// Post-training quantization of a trained model.
    pub fn from_model(model: &Mlp) -> Self {
        QuantizedMlp {
            layers: model
                .layers
                .iter()
                .map(|l| (QuantizedMatrix::quantize(&l.w), l.b.clone()))
                .collect(),
        }
    }

    /// Storage bytes of the quantized parameters.
    pub fn bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|(w, b)| w.bytes() + b.len() * 4)
            .sum()
    }

    /// Class predictions (dequantize-on-the-fly inference).
    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        let n = self.layers.len();
        let mut h = x.clone();
        for (i, (qw, b)) in self.layers.iter().enumerate() {
            let w = qw.dequantize();
            let mut y = h.matmul(&w);
            for r in 0..y.rows() {
                for (v, bias) in y.row_mut(r).iter_mut().zip(b) {
                    *v += bias;
                }
            }
            if i + 1 < n {
                for v in y.as_mut_slice() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
            }
            h = y;
        }
        (0..h.rows())
            .map(|r| {
                h.row(r)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .expect("non-empty row")
                    .0
            })
            .collect()
    }

    /// Accuracy on a dataset.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let preds = self.predict(&data.x);
        preds.iter().zip(&data.y).filter(|(p, y)| p == y).count() as f64 / data.len() as f64
    }
}

/// FP32 parameter bytes of a model.
pub fn model_bytes(model: &Mlp) -> usize {
    model.num_params() * 4
}

// ----------------------------------------------------------------- fusion

/// Fused linear→ReLU inference: one pass per layer into reused buffers;
/// no intermediate activation matrices are allocated per layer pair.
/// Produces bit-identical predictions to `Mlp::predict`.
pub fn fused_predict(model: &Mlp, x: &Matrix) -> Vec<usize> {
    let n = model.layers.len();
    let rows = x.rows();
    let mut cur: Vec<f32> = x.as_slice().to_vec();
    let mut cur_cols = x.cols();
    let mut next: Vec<f32> = Vec::new();
    for (i, layer) in model.layers.iter().enumerate() {
        let out_cols = layer.w.cols();
        next.clear();
        next.resize(rows * out_cols, 0.0);
        let relu = i + 1 < n;
        for r in 0..rows {
            let a_row = &cur[r * cur_cols..(r + 1) * cur_cols];
            let out_row = &mut next[r * out_cols..(r + 1) * out_cols];
            out_row.copy_from_slice(&layer.b);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let w_row = layer.w.row(k);
                for (o, &w) in out_row.iter_mut().zip(w_row) {
                    *o += a * w;
                }
            }
            if relu {
                for o in out_row.iter_mut() {
                    if *o < 0.0 {
                        *o = 0.0;
                    }
                }
            }
        }
        std::mem::swap(&mut cur, &mut next);
        cur_cols = out_cols;
    }
    (0..rows)
        .map(|r| {
            cur[r * cur_cols..(r + 1) * cur_cols]
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .expect("non-empty row")
                .0
        })
        .collect()
}

// ---------------------------------------------------------------- pruning

/// Zero out the smallest-magnitude fraction `sparsity` of each layer's
/// weights (per-layer magnitude pruning). Returns achieved sparsity.
pub fn prune_magnitude(model: &mut Mlp, sparsity: f64) -> f64 {
    assert!((0.0..1.0).contains(&sparsity), "sparsity must be in [0,1)");
    let mut zeroed = 0usize;
    let mut total = 0usize;
    for layer in &mut model.layers {
        let w = layer.w.as_mut_slice();
        total += w.len();
        let mut mags: Vec<f32> = w.iter().map(|x| x.abs()).collect();
        mags.sort_by(f32::total_cmp);
        let k = (w.len() as f64 * sparsity) as usize;
        if k == 0 {
            continue;
        }
        let threshold = mags[k - 1];
        for v in w.iter_mut() {
            if v.abs() <= threshold && zeroed < total {
                *v = 0.0;
                zeroed += 1;
            }
        }
    }
    zeroed as f64 / total.max(1) as f64
}

/// Fraction of exactly-zero weights.
pub fn sparsity(model: &Mlp) -> f64 {
    let mut zeros = 0usize;
    let mut total = 0usize;
    for layer in &model.layers {
        zeros += layer.w.as_slice().iter().filter(|&&x| x == 0.0).count();
        total += layer.w.len();
    }
    zeros as f64 / total.max(1) as f64
}

// ------------------------------------------------------------ distillation

/// Distill `teacher` into a fresh student with the given layer sizes by
/// matching temperature-softened teacher probabilities (plus the hard
/// labels, equally weighted).
pub fn distill(
    teacher: &mut Mlp,
    student_sizes: &[usize],
    data: &Dataset,
    temperature: f32,
    epochs: usize,
    seed: u64,
) -> Mlp {
    assert!(temperature > 0.0);
    let mut rng = Rng::new(seed);
    let mut student = Mlp::new(student_sizes, &mut rng);
    let mut opt = Sgd::new(0.1, 0.9);
    // Precompute teacher soft targets.
    let tlogits = teacher.forward(&data.x);
    let mut soft = tlogits.clone();
    for r in 0..soft.rows() {
        let row = soft.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = ((*v - max) / temperature).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    for epoch in 0..epochs {
        let mut idx: Vec<usize> = (0..data.len()).collect();
        Rng::new(seed ^ (epoch as u64 + 1)).shuffle(&mut idx);
        for chunk in idx.chunks(32) {
            let batch = data.subset(chunk);
            let logits = student.forward(&batch.x);
            // Hard-label gradient.
            let (_, mut d) = softmax_cross_entropy(&logits, &batch.y);
            // Soft-target gradient: (student_softmax − teacher_soft)/n.
            let mut sd = logits.clone();
            for (r, &orig) in chunk.iter().enumerate() {
                let row = sd.row_mut(r);
                let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                let mut sum = 0.0;
                for v in row.iter_mut() {
                    *v = (*v - max).exp();
                    sum += *v;
                }
                for (c, v) in row.iter_mut().enumerate() {
                    *v = (*v / sum - soft.get(orig, c)) / chunk.len() as f32;
                }
            }
            d.axpy(1.0, &sd);
            d.scale(0.5);
            student.backward(&d);
            opt.step(&mut student);
        }
    }
    student
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::train_epoch;

    fn trained_model(seed: u64) -> (Mlp, Dataset) {
        let data = Dataset::blobs(440, 8, 11, 0.6, seed);
        let mut rng = Rng::new(seed + 1);
        let mut model = Mlp::new(&[8, 32, 11], &mut rng);
        let mut opt = Sgd::new(0.1, 0.9);
        for _ in 0..25 {
            train_epoch(&mut model, &data, &mut opt, 32, &mut rng);
        }
        (model, data)
    }

    #[test]
    fn quantize_roundtrip_error_bounded() {
        let mut rng = Rng::new(1);
        let m = Matrix::kaiming(32, 16, &mut rng);
        let q = QuantizedMatrix::quantize(&m);
        let back = q.dequantize();
        let bound = q.max_error_bound();
        for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() <= bound + 1e-7, "{a} vs {b} (bound {bound})");
        }
    }

    #[test]
    fn quantized_model_is_almost_4x_smaller() {
        // Weights shrink 4×; fp32 biases and per-tensor scales keep the
        // overall ratio a bit below 4 on small models.
        let (model, _) = trained_model(50);
        let q = QuantizedMlp::from_model(&model);
        let ratio = model_bytes(&model) as f64 / q.bytes() as f64;
        assert!(ratio > 3.0, "compression ratio {ratio}");
        assert!(
            ratio <= 4.0,
            "ratio {ratio} cannot exceed the weight-only bound"
        );
    }

    #[test]
    fn quantized_accuracy_close_to_fp32() {
        let (mut model, data) = trained_model(51);
        let fp32 = data.accuracy(&mut model);
        let q = QuantizedMlp::from_model(&model);
        let int8 = q.accuracy(&data);
        assert!(fp32 > 0.9);
        assert!(fp32 - int8 < 0.05, "fp32 {fp32} vs int8 {int8}");
    }

    #[test]
    fn zero_matrix_quantizes_safely() {
        let m = Matrix::zeros(4, 4);
        let q = QuantizedMatrix::quantize(&m);
        assert_eq!(q.dequantize().as_slice(), m.as_slice());
    }

    #[test]
    fn fused_predict_matches_unfused() {
        let (mut model, data) = trained_model(52);
        let unfused = model.predict(&data.x);
        let fused = fused_predict(&model, &data.x);
        assert_eq!(unfused, fused);
    }

    #[test]
    fn pruning_hits_target_and_degrades_gracefully() {
        let (mut model, data) = trained_model(53);
        let before = data.accuracy(&mut model);
        let achieved = prune_magnitude(&mut model, 0.5);
        assert!(
            (achieved - 0.5).abs() < 0.05,
            "achieved sparsity {achieved}"
        );
        assert!((sparsity(&model) - achieved).abs() < 1e-9);
        let after = data.accuracy(&mut model);
        // Half the weights gone: accuracy drops but the model is not dead.
        assert!(after > 0.5, "pruned accuracy {after} (before {before})");
        // Heavy pruning is much worse than moderate pruning.
        let (mut model2, _) = trained_model(53);
        prune_magnitude(&mut model2, 0.95);
        let wrecked = data.accuracy(&mut model2);
        assert!(
            wrecked <= after + 0.05,
            "95% pruned {wrecked} vs 50% pruned {after}"
        );
    }

    #[test]
    fn pruning_zero_sparsity_is_noop() {
        let (mut model, _) = trained_model(54);
        let before = model.params_flat();
        prune_magnitude(&mut model, 0.0);
        assert_eq!(model.params_flat(), before);
    }

    #[test]
    fn distilled_student_learns_from_teacher() {
        let (mut teacher, data) = trained_model(55);
        let teacher_acc = data.accuracy(&mut teacher);
        let mut student = distill(&mut teacher, &[8, 8, 11], &data, 2.0, 25, 56);
        let student_acc = data.accuracy(&mut student);
        assert!(student.num_params() < teacher.num_params() / 2);
        assert!(
            student_acc > teacher_acc - 0.15,
            "student {student_acc} vs teacher {teacher_acc}"
        );
    }
}
