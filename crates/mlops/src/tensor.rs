//! Minimal dense-matrix kernel for the training substrate.
//!
//! Row-major `f32` matrices with exactly the operations the models need.
//! `matmul` parallelizes over row blocks with rayon once the output is
//! large enough to amortize the fork/join (per the domain guide: convert
//! the sequential loop, keep the cutoff explicit and benchmarked in
//! `bench_allreduce`).

use opml_simkernel::Rng;
use serde::{Deserialize, Serialize};

/// Output elements below which `matmul` stays sequential.
const PAR_CUTOFF: usize = 64 * 64;

/// A row-major `f32` matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wrap an existing buffer (must be `rows*cols` long).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match shape");
        Matrix { rows, cols, data }
    }

    /// Kaiming-uniform initialization (the standard for ReLU nets).
    pub fn kaiming(rows: usize, cols: usize, rng: &mut Rng) -> Self {
        let bound = (6.0 / rows as f64).sqrt() as f32;
        Matrix::from_fn(rows, cols, |_, _| {
            rng.range_f64(-bound as f64, bound as f64) as f32
        })
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat data view.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable data view.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// `self · other`, parallelized over row blocks above a cutoff.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        let work = self.rows * other.cols;
        if work >= PAR_CUTOFF && self.rows > 1 {
            use rayon::prelude::*;
            let n = other.cols;
            out.data
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(r, out_row)| {
                    matmul_row(self.row(r), other, out_row);
                });
        } else {
            for r in 0..self.rows {
                let (a_row, o) = (
                    &self.data[r * self.cols..(r + 1) * self.cols],
                    &mut out.data[r * other.cols..(r + 1) * other.cols],
                );
                matmul_row(a_row, other, o);
            }
        }
        out
    }

    /// `selfᵀ`.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "axpy shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Scale all elements.
    pub fn scale(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Set all elements to zero (gradient reset).
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True iff the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// `out_row = a_row · b` (ikj ordering: stream over b's rows).
#[inline]
fn matmul_row(a_row: &[f32], b: &Matrix, out_row: &mut [f32]) {
    out_row.fill(0.0);
    for (k, &a) in a_row.iter().enumerate() {
        if a == 0.0 {
            continue;
        }
        let b_row = b.row(k);
        for (o, &bv) in out_row.iter_mut().zip(b_row) {
            *o += a * bv;
        }
    }
}

/// `dst += src` for flat parameter/gradient buffers.
pub fn add_assign(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len());
    for (d, s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_parallel_matches_sequential() {
        // Above the cutoff, the rayon path must agree with the naive path.
        let mut rng = Rng::new(3);
        let a = Matrix::from_fn(96, 80, |_, _| rng.range_f64(-1.0, 1.0) as f32);
        let b = Matrix::from_fn(80, 96, |_, _| rng.range_f64(-1.0, 1.0) as f32);
        let par = a.matmul(&b); // 96*96 > cutoff → parallel
                                // Naive reference.
        let mut naive = Matrix::zeros(96, 96);
        for r in 0..96 {
            for c in 0..96 {
                let mut s = 0.0;
                for k in 0..80 {
                    s += a.get(r, k) * b.get(k, c);
                }
                naive.set(r, c, s);
            }
        }
        for (x, y) in par.as_slice().iter().zip(naive.as_slice()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(0, 1), 4.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![10.0, 10.0, 10.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[6.0, 7.0, 8.0]);
        a.scale(2.0);
        assert_eq!(a.as_slice(), &[12.0, 14.0, 16.0]);
        a.fill_zero();
        assert_eq!(a.as_slice(), &[0.0; 3]);
    }

    #[test]
    fn kaiming_within_bound() {
        let mut rng = Rng::new(5);
        let m = Matrix::kaiming(100, 50, &mut rng);
        let bound = (6.0f32 / 100.0).sqrt();
        assert!(m.as_slice().iter().all(|&x| x.abs() <= bound));
        // Not all zero.
        assert!(m.frobenius() > 0.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut d = vec![1.0, 1.0];
        add_assign(&mut d, &[2.0, 3.0]);
        assert_eq!(d, vec![3.0, 4.0]);
    }
}
