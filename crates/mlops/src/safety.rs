//! Safeguarding ML systems — Unit 9 (§3.9).
//!
//! The unit has no lab ("to accommodate project work"), but its lecture
//! content — risk categories, red-teaming, filtering, and their
//! limitations — maps onto concrete mechanisms we can implement against
//! the real models:
//!
//! * [`fgsm_attack`] — a gradient-sign adversarial attack using the
//!   models' *exact* gradients (the red-team tool);
//! * [`RobustnessReport`] — attack-success measurement across an ε
//!   sweep, plus the standard mitigation ([`adversarial_finetune`]) and
//!   its measured effect — including the lecture's point that
//!   mitigations are partial;
//! * [`ConfidenceGate`] — a deployment-time filter that abstains on
//!   low-confidence inputs (an "overreliance" mitigation), with the
//!   coverage/risk trade-off it induces.

use crate::model::{softmax_cross_entropy, Dataset, Mlp, Sgd};
use crate::tensor::Matrix;
use opml_simkernel::Rng;
use serde::{Deserialize, Serialize};

/// Fast Gradient Sign Method: perturb inputs by `ε·sign(∂L/∂x)`.
///
/// Returns the adversarial feature matrix. Uses the true input gradient
/// computed through the network (the backward pass returns `dL/dx`).
pub fn fgsm_attack(model: &mut Mlp, data: &Dataset, epsilon: f32) -> Matrix {
    assert!(epsilon >= 0.0);
    let logits = model.forward(&data.x);
    let (_, dlogits) = softmax_cross_entropy(&logits, &data.y);
    model.zero_grads();
    // Input gradient: run backward through every layer; the Mlp's
    // backward returns dL/dx of the first layer via layer chaining, so
    // we reimplement the chain here to capture it.
    let dx = {
        // Mlp::backward consumes masks internally; replicate by calling
        // backward on a clone and capturing the returned gradient of the
        // first layer through a manual chain.
        let mut d = dlogits;
        let n = model.layers.len();
        // Recompute masks by a fresh forward (cheap, keeps API simple).
        let mut activations = vec![data.x.clone()];
        let mut h = data.x.clone();
        for (i, layer) in model.layers.iter_mut().enumerate() {
            h = layer.forward(&h);
            if i + 1 < n {
                for v in h.as_mut_slice() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
            }
            activations.push(h.clone());
        }
        for (i, layer) in model.layers.iter_mut().enumerate().rev() {
            if i + 1 < n {
                // ReLU mask from the stored activation (output of layer i
                // after ReLU): zero gradient where activation was zero.
                let act = &activations[i + 1];
                for (v, &a) in d.as_mut_slice().iter_mut().zip(act.as_slice()) {
                    if a <= 0.0 {
                        *v = 0.0;
                    }
                }
            }
            // Prime the layer's input cache, then backprop.
            layer.forward(&activations[i]);
            d = layer.backward(&d);
        }
        model.zero_grads();
        d
    };
    let mut adv = data.x.clone();
    for (x, g) in adv.as_mut_slice().iter_mut().zip(dx.as_slice()) {
        *x += epsilon * g.signum();
    }
    adv
}

/// Attack-success measurement across an ε sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RobustnessReport {
    /// `(ε, accuracy under attack)` rows, ε ascending.
    pub sweep: Vec<(f32, f64)>,
    /// Clean accuracy.
    pub clean_accuracy: f64,
}

impl RobustnessReport {
    /// Accuracy at a given ε (must be in the sweep).
    pub fn at(&self, epsilon: f32) -> Option<f64> {
        self.sweep
            .iter()
            .find(|&&(e, _)| (e - epsilon).abs() < 1e-9)
            .map(|&(_, a)| a)
    }
}

/// Red-team a model: measure accuracy under FGSM at each ε.
pub fn red_team(model: &mut Mlp, data: &Dataset, epsilons: &[f32]) -> RobustnessReport {
    let clean_accuracy = data.accuracy(model);
    let sweep = epsilons
        .iter()
        .map(|&eps| {
            let adv = fgsm_attack(model, data, eps);
            let adv_data = Dataset {
                x: adv,
                y: data.y.clone(),
                classes: data.classes,
            };
            (eps, adv_data.accuracy(model))
        })
        .collect();
    RobustnessReport {
        sweep,
        clean_accuracy,
    }
}

/// Adversarial fine-tuning: continue training on a mix of clean and
/// FGSM examples (the standard, partial mitigation).
pub fn adversarial_finetune(
    model: &mut Mlp,
    data: &Dataset,
    epsilon: f32,
    epochs: usize,
    seed: u64,
) {
    let mut rng = Rng::new(seed);
    let mut opt = Sgd::new(0.05, 0.9);
    for _ in 0..epochs {
        // Clean pass.
        train_epoch_like(model, data, &mut opt, &mut rng);
        // Adversarial pass on fresh perturbations.
        let adv = fgsm_attack(model, data, epsilon);
        let adv_data = Dataset {
            x: adv,
            y: data.y.clone(),
            classes: data.classes,
        };
        train_epoch_like(model, &adv_data, &mut opt, &mut rng);
    }
}

fn train_epoch_like(model: &mut Mlp, data: &Dataset, opt: &mut Sgd, rng: &mut Rng) {
    let mut idx: Vec<usize> = (0..data.len()).collect();
    rng.shuffle(&mut idx);
    for chunk in idx.chunks(32) {
        let batch = data.subset(chunk);
        let logits = model.forward(&batch.x);
        let (_, d) = softmax_cross_entropy(&logits, &batch.y);
        model.zero_grads();
        model.forward(&batch.x);
        model.backward(&d);
        opt.step(model);
    }
}

/// Deployment-time confidence gate: predictions whose softmax confidence
/// is below the threshold are abstained (routed to a human — the
/// "dedicated human annotators" of §3.7's supervision-signal lab part).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ConfidenceGate {
    /// Minimum softmax probability to auto-accept.
    pub threshold: f64,
}

/// Outcome of gated inference on a dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GatedReport {
    /// Fraction of inputs the system answered (did not abstain).
    pub coverage: f64,
    /// Accuracy on the answered subset.
    pub selective_accuracy: f64,
    /// Accuracy if forced to answer everything (no gate).
    pub full_accuracy: f64,
}

impl ConfidenceGate {
    /// Run gated inference.
    pub fn evaluate(&self, model: &mut Mlp, data: &Dataset) -> GatedReport {
        assert!(!data.is_empty());
        let logits = model.forward(&data.x);
        let mut answered = 0usize;
        let mut answered_correct = 0usize;
        let mut correct = 0usize;
        for r in 0..logits.rows() {
            let row = logits.row(r);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let sum: f32 = row.iter().map(|&v| (v - max).exp()).sum();
            let (pred, conf) = row
                .iter()
                .enumerate()
                .map(|(c, &v)| (c, ((v - max).exp() / sum) as f64))
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("confidence finite"))
                .expect("non-empty row");
            let is_correct = pred == data.y[r];
            correct += usize::from(is_correct);
            if conf >= self.threshold {
                answered += 1;
                answered_correct += usize::from(is_correct);
            }
        }
        GatedReport {
            coverage: answered as f64 / data.len() as f64,
            selective_accuracy: if answered == 0 {
                0.0
            } else {
                answered_correct as f64 / answered as f64
            },
            full_accuracy: correct as f64 / data.len() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::train_epoch;

    fn trained(seed: u64) -> (Mlp, Dataset) {
        let data = Dataset::blobs(440, 8, 11, 0.6, seed);
        let mut rng = Rng::new(seed + 1);
        let mut model = Mlp::new(&[8, 32, 11], &mut rng);
        let mut opt = Sgd::new(0.1, 0.9);
        for _ in 0..25 {
            train_epoch(&mut model, &data, &mut opt, 32, &mut rng);
        }
        (model, data)
    }

    #[test]
    fn fgsm_degrades_accuracy_monotonically_in_epsilon() {
        let (mut model, data) = trained(500);
        let report = red_team(&mut model, &data, &[0.0, 0.2, 0.5, 1.0]);
        assert!(report.clean_accuracy > 0.9);
        // ε = 0 is the clean accuracy.
        assert!((report.at(0.0).unwrap() - report.clean_accuracy).abs() < 1e-9);
        // Stronger attacks hurt more.
        let accs: Vec<f64> = report.sweep.iter().map(|&(_, a)| a).collect();
        for w in accs.windows(2) {
            assert!(w[1] <= w[0] + 0.02, "non-monotone attack: {accs:?}");
        }
        // A strong attack on an undefended model does real damage.
        assert!(
            report.at(1.0).unwrap() < report.clean_accuracy - 0.2,
            "attack too weak: {accs:?}"
        );
    }

    #[test]
    fn fgsm_zero_epsilon_is_identity() {
        let (mut model, data) = trained(501);
        let adv = fgsm_attack(&mut model, &data, 0.0);
        assert_eq!(adv.as_slice(), data.x.as_slice());
    }

    #[test]
    fn adversarial_finetuning_helps_but_is_partial() {
        let (mut model, data) = trained(502);
        let eps = 0.5;
        let before = red_team(&mut model, &data, &[eps]).at(eps).unwrap();
        adversarial_finetune(&mut model, &data, eps, 10, 503);
        let after_report = red_team(&mut model, &data, &[eps]);
        let after = after_report.at(eps).unwrap();
        assert!(
            after > before + 0.1,
            "fine-tuning should improve robustness: {before:.3} -> {after:.3}"
        );
        // …while the lecture's caveat holds: robust accuracy still trails
        // clean accuracy.
        assert!(after < after_report.clean_accuracy + 1e-9);
    }

    #[test]
    fn confidence_gate_trades_coverage_for_accuracy() {
        let (mut model, base) = trained(504);
        // Mix in drifted (harder) traffic so the model has real errors.
        let hard = base.shifted(1.2);
        let mut x = Matrix::zeros(base.len() + hard.len(), base.x.cols());
        let mut y = Vec::new();
        for i in 0..base.len() {
            x.row_mut(i).copy_from_slice(base.x.row(i));
            y.push(base.y[i]);
        }
        for i in 0..hard.len() {
            x.row_mut(base.len() + i).copy_from_slice(hard.x.row(i));
            y.push(hard.y[i]);
        }
        let mixed = Dataset {
            x,
            y,
            classes: base.classes,
        };
        let open = ConfidenceGate { threshold: 0.0 }.evaluate(&mut model, &mixed);
        let gated = ConfidenceGate { threshold: 0.9 }.evaluate(&mut model, &mixed);
        assert!((open.coverage - 1.0).abs() < 1e-9);
        assert!(gated.coverage < 1.0, "gate must abstain sometimes");
        assert!(gated.coverage > 0.2, "gate abstains on everything");
        assert!(
            gated.selective_accuracy > open.full_accuracy,
            "answered subset should be more accurate: {:.3} vs {:.3}",
            gated.selective_accuracy,
            open.full_accuracy
        );
    }

    #[test]
    fn gate_thresholds_are_monotone_in_coverage() {
        let (mut model, data) = trained(505);
        let mixed = data.shifted(0.8);
        let mut last_coverage = 1.1;
        for t in [0.0, 0.5, 0.8, 0.95, 0.999] {
            let r = ConfidenceGate { threshold: t }.evaluate(&mut model, &mixed);
            assert!(
                r.coverage <= last_coverage + 1e-9,
                "coverage not monotone at {t}"
            );
            last_coverage = r.coverage;
        }
    }
}
