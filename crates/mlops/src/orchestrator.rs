//! A Kubernetes-like container orchestrator — the backbone tool of
//! Units 2 and 3 (§3.2–§3.3): students "installed Kubernetes using
//! Kubespray and deployed their containerized application using replicas,
//! load balancing, and horizontal scaling", then "used Argo CD to
//! declaratively manage the deployment".
//!
//! The mechanism implemented here is the reconciliation loop:
//!
//! * a [`DeploymentSpec`] declares desired state (image, replica count,
//!   update strategy);
//! * the [`Orchestrator`] owns live [`Pod`]s and, each [`tick`], moves
//!   actual state toward desired state: creating/deleting pods,
//!   restarting crashed ones (self-healing), and performing **rolling
//!   updates** that never drop below `replicas − max_unavailable` ready
//!   pods of any image;
//! * a [`Service`] load-balances requests round-robin across ready pods;
//! * an [`Autoscaler`] (HPA-style) adjusts the declared replica count
//!   from observed per-pod load;
//! * [`Orchestrator::apply`] is the Argo-CD-style declarative sync: hand
//!   it the manifest set, it diffs against live state and reconciles.
//!
//! [`tick`]: Orchestrator::tick

use opml_simkernel::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Desired state for one deployment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeploymentSpec {
    /// Deployment name.
    pub name: String,
    /// Container image (e.g. `gourmetgram:v2`).
    pub image: String,
    /// Desired replicas.
    pub replicas: u32,
    /// Rolling-update bound: how many replicas may be unavailable during
    /// an update (Kubernetes' `maxUnavailable`).
    pub max_unavailable: u32,
}

/// Pod lifecycle phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PodPhase {
    /// Scheduled, still starting (becomes Ready after its startup ticks).
    Pending,
    /// Serving traffic.
    Ready,
    /// Crashed; will be restarted by the reconciler.
    Crashed,
}

/// A running container instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pod {
    /// Unique pod id.
    pub id: u64,
    /// Owning deployment.
    pub deployment: String,
    /// Image this pod runs.
    pub image: String,
    /// Phase.
    pub phase: PodPhase,
    /// Ticks remaining until Ready (startup latency).
    pub startup_remaining: u32,
    /// Restart count (for crash-loop visibility).
    pub restarts: u32,
}

/// Ticks a new pod takes to become Ready.
const STARTUP_TICKS: u32 = 2;

/// The orchestrator: desired specs + live pods + a reconciliation loop.
///
/// ```
/// use opml_mlops::orchestrator::{DeploymentSpec, Orchestrator};
/// use opml_simkernel::Rng;
/// let mut orch = Orchestrator::new();
/// let mut rng = Rng::new(7);
/// orch.apply(&[DeploymentSpec {
///     name: "api".into(), image: "v1".into(), replicas: 2, max_unavailable: 1,
/// }]);
/// for _ in 0..4 { orch.tick(&mut rng); }
/// assert_eq!(orch.ready_pods("api").len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct Orchestrator {
    specs: BTreeMap<String, DeploymentSpec>,
    pods: Vec<Pod>,
    next_pod_id: u64,
    /// Per-tick probability that any Ready pod crashes (failure
    /// injection; 0 disables).
    pub crash_probability: f64,
    events: Vec<String>,
}

impl Orchestrator {
    /// Empty cluster.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declarative sync (Argo-CD style): make this manifest set the
    /// desired state. Deployments absent from the set are deleted.
    pub fn apply(&mut self, manifests: &[DeploymentSpec]) {
        let names: Vec<String> = manifests.iter().map(|m| m.name.clone()).collect();
        let removed: Vec<String> = self
            .specs
            .keys()
            .filter(|k| !names.contains(k))
            .cloned()
            .collect();
        for name in removed {
            self.specs.remove(&name);
            self.events.push(format!("pruned deployment {name}"));
        }
        for m in manifests {
            let changed = self.specs.get(&m.name) != Some(m);
            if changed {
                self.events.push(format!(
                    "synced {} (image {}, replicas {})",
                    m.name, m.image, m.replicas
                ));
            }
            self.specs.insert(m.name.clone(), m.clone());
        }
    }

    /// Update one deployment's replica count (what the autoscaler calls).
    pub fn scale(&mut self, name: &str, replicas: u32) {
        if let Some(spec) = self.specs.get_mut(name) {
            if spec.replicas != replicas {
                self.events.push(format!("scaled {name} to {replicas}"));
                spec.replicas = replicas;
            }
        }
    }

    /// One reconciliation step. `rng` drives failure injection.
    pub fn tick(&mut self, rng: &mut Rng) {
        // 1. Progress startups; inject crashes.
        for pod in &mut self.pods {
            match pod.phase {
                PodPhase::Pending => {
                    pod.startup_remaining = pod.startup_remaining.saturating_sub(1);
                    if pod.startup_remaining == 0 {
                        pod.phase = PodPhase::Ready;
                    }
                }
                PodPhase::Ready => {
                    if self.crash_probability > 0.0 && rng.chance(self.crash_probability) {
                        pod.phase = PodPhase::Crashed;
                        self.events
                            .push(format!("pod {} ({}) crashed", pod.id, pod.deployment));
                    }
                }
                PodPhase::Crashed => {}
            }
        }
        // 2. Self-heal: restart crashed pods (as Pending).
        for pod in &mut self.pods {
            if pod.phase == PodPhase::Crashed {
                pod.phase = PodPhase::Pending;
                pod.startup_remaining = STARTUP_TICKS;
                pod.restarts += 1;
            }
        }
        // 3. Reconcile each deployment.
        let specs: Vec<DeploymentSpec> = self.specs.values().cloned().collect();
        for spec in specs {
            self.reconcile(&spec);
        }
        // 4. Garbage-collect pods of deleted deployments.
        let live: Vec<String> = self.specs.keys().cloned().collect();
        self.pods.retain(|p| live.contains(&p.deployment));
    }

    fn reconcile(&mut self, spec: &DeploymentSpec) {
        // Split this deployment's pods by image currency.
        let current: Vec<usize> = self
            .pods
            .iter()
            .enumerate()
            .filter(|(_, p)| p.deployment == spec.name && p.image == spec.image)
            .map(|(i, _)| i)
            .collect();
        let stale: Vec<usize> = self
            .pods
            .iter()
            .enumerate()
            .filter(|(_, p)| p.deployment == spec.name && p.image != spec.image)
            .map(|(i, _)| i)
            .collect();
        let total = current.len() + stale.len();

        // Scale up with current-image pods until the replica count holds.
        let mut to_create = (spec.replicas as usize).saturating_sub(total);
        while to_create > 0 {
            let id = self.next_pod_id;
            self.next_pod_id += 1;
            self.pods.push(Pod {
                id,
                deployment: spec.name.clone(),
                image: spec.image.clone(),
                phase: PodPhase::Pending,
                startup_remaining: STARTUP_TICKS,
                restarts: 0,
            });
            to_create -= 1;
        }
        // Scale down: prefer deleting stale pods, then current ones.
        let mut to_delete = total.saturating_sub(spec.replicas as usize);
        if to_delete > 0 {
            let mut doomed: Vec<usize> = stale.iter().chain(current.iter()).copied().collect();
            doomed.truncate(to_delete);
            to_delete = 0;
            let _ = to_delete;
            let mut idx = 0usize;
            self.pods.retain(|_| {
                let keep = !doomed.contains(&idx);
                idx += 1;
                keep
            });
        }
        // Rolling update: replace stale pods while keeping availability.
        // We may take down at most `max_unavailable` pods beyond those
        // already not Ready.
        let ready_now = self
            .pods
            .iter()
            .filter(|p| p.deployment == spec.name && p.phase == PodPhase::Ready)
            .count() as u32;
        let min_ready = spec.replicas.saturating_sub(spec.max_unavailable);
        let mut budget = ready_now.saturating_sub(min_ready);
        if budget > 0 {
            // Replace up to `budget` stale pods this tick.
            let stale_ids: Vec<u64> = self
                .pods
                .iter()
                .filter(|p| p.deployment == spec.name && p.image != spec.image)
                .map(|p| p.id)
                .collect();
            for id in stale_ids {
                if budget == 0 {
                    break;
                }
                let pos = self
                    .pods
                    .iter()
                    .position(|p| p.id == id)
                    .expect("just listed");
                let was_ready = self.pods[pos].phase == PodPhase::Ready;
                self.pods.remove(pos);
                let new_id = self.next_pod_id;
                self.next_pod_id += 1;
                self.pods.push(Pod {
                    id: new_id,
                    deployment: spec.name.clone(),
                    image: spec.image.clone(),
                    phase: PodPhase::Pending,
                    startup_remaining: STARTUP_TICKS,
                    restarts: 0,
                });
                if was_ready {
                    budget -= 1;
                }
            }
        }
    }

    /// Pods of a deployment.
    pub fn pods_of(&self, deployment: &str) -> Vec<&Pod> {
        self.pods
            .iter()
            .filter(|p| p.deployment == deployment)
            .collect()
    }

    /// Ready pods of a deployment.
    pub fn ready_pods(&self, deployment: &str) -> Vec<&Pod> {
        self.pods
            .iter()
            .filter(|p| p.deployment == deployment && p.phase == PodPhase::Ready)
            .collect()
    }

    /// Images currently Ready, with counts (for update-progress checks).
    pub fn ready_images(&self, deployment: &str) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        for p in self.ready_pods(deployment) {
            *out.entry(p.image.clone()).or_insert(0) += 1;
        }
        out
    }

    /// Drain the event log.
    pub fn take_events(&mut self) -> Vec<String> {
        std::mem::take(&mut self.events)
    }
}

/// Round-robin service over a deployment's ready pods.
#[derive(Debug, Default)]
pub struct Service {
    cursor: usize,
}

impl Service {
    /// New service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Route one request; returns the pod id serving it, or `None` if no
    /// pod is ready (an outage).
    pub fn route(&mut self, orch: &Orchestrator, deployment: &str) -> Option<u64> {
        let ready = orch.ready_pods(deployment);
        if ready.is_empty() {
            return None;
        }
        let pod = ready[self.cursor % ready.len()];
        self.cursor = self.cursor.wrapping_add(1);
        Some(pod.id)
    }
}

/// HPA-style autoscaler: keeps per-pod load near the target.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Autoscaler {
    /// Minimum replicas.
    pub min_replicas: u32,
    /// Maximum replicas.
    pub max_replicas: u32,
    /// Target load (requests/sec) per ready pod.
    pub target_load_per_pod: f64,
}

impl Autoscaler {
    /// Desired replica count for an offered load (the HPA formula:
    /// `ceil(current_load / target)`, clamped).
    pub fn desired_replicas(&self, offered_rps: f64) -> u32 {
        let raw = (offered_rps / self.target_load_per_pod).ceil() as u32;
        raw.clamp(self.min_replicas, self.max_replicas)
    }

    /// Observe load and scale the deployment.
    pub fn reconcile(&self, orch: &mut Orchestrator, deployment: &str, offered_rps: f64) {
        let desired = self.desired_replicas(offered_rps);
        orch.scale(deployment, desired);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(image: &str, replicas: u32) -> DeploymentSpec {
        DeploymentSpec {
            name: "gourmetgram".into(),
            image: image.into(),
            replicas,
            max_unavailable: 1,
        }
    }

    fn settle(orch: &mut Orchestrator, rng: &mut Rng, ticks: usize) {
        for _ in 0..ticks {
            orch.tick(rng);
        }
    }

    #[test]
    fn deploy_reaches_desired_replicas() {
        let mut orch = Orchestrator::new();
        let mut rng = Rng::new(1);
        orch.apply(&[spec("v1", 3)]);
        settle(&mut orch, &mut rng, 4);
        assert_eq!(orch.ready_pods("gourmetgram").len(), 3);
        assert!(orch.pods_of("gourmetgram").iter().all(|p| p.image == "v1"));
    }

    #[test]
    fn self_healing_restarts_crashed_pods() {
        let mut orch = Orchestrator::new();
        let mut rng = Rng::new(2);
        orch.apply(&[spec("v1", 3)]);
        settle(&mut orch, &mut rng, 4);
        // Everything crashes.
        orch.crash_probability = 1.0;
        orch.tick(&mut rng);
        orch.crash_probability = 0.0;
        // The reconciler brings them back without operator action.
        settle(&mut orch, &mut rng, 4);
        let pods = orch.ready_pods("gourmetgram");
        assert_eq!(pods.len(), 3);
        assert!(
            pods.iter().all(|p| p.restarts >= 1),
            "restart counters must record healing"
        );
    }

    #[test]
    fn rolling_update_preserves_availability() {
        let mut orch = Orchestrator::new();
        let mut rng = Rng::new(3);
        orch.apply(&[spec("v1", 4)]);
        settle(&mut orch, &mut rng, 4);
        // Roll to v2; with max_unavailable = 1, at least 3 pods must stay
        // Ready at every tick.
        orch.apply(&[spec("v2", 4)]);
        for _ in 0..20 {
            orch.tick(&mut rng);
            let ready = orch.ready_pods("gourmetgram").len();
            assert!(ready >= 3, "availability dropped to {ready} during rollout");
        }
        let images = orch.ready_images("gourmetgram");
        assert_eq!(images.get("v2"), Some(&4), "rollout incomplete: {images:?}");
        assert_eq!(images.get("v1"), None);
    }

    #[test]
    fn declarative_prune_removes_undeclared_deployments() {
        let mut orch = Orchestrator::new();
        let mut rng = Rng::new(4);
        orch.apply(&[
            spec("v1", 2),
            DeploymentSpec {
                name: "staging".into(),
                image: "v1".into(),
                replicas: 1,
                max_unavailable: 1,
            },
        ]);
        settle(&mut orch, &mut rng, 4);
        assert_eq!(orch.ready_pods("staging").len(), 1);
        // New manifest set omits staging → Argo-style prune.
        orch.apply(&[spec("v1", 2)]);
        settle(&mut orch, &mut rng, 2);
        assert!(orch.pods_of("staging").is_empty());
        assert_eq!(orch.ready_pods("gourmetgram").len(), 2);
    }

    #[test]
    fn service_round_robins_across_ready_pods() {
        let mut orch = Orchestrator::new();
        let mut rng = Rng::new(5);
        orch.apply(&[spec("v1", 3)]);
        settle(&mut orch, &mut rng, 4);
        let mut svc = Service::new();
        let mut counts: BTreeMap<u64, usize> = BTreeMap::new();
        for _ in 0..300 {
            let pod = svc.route(&orch, "gourmetgram").expect("pods ready");
            *counts.entry(pod).or_insert(0) += 1;
        }
        assert_eq!(counts.len(), 3);
        assert!(counts.values().all(|&c| c == 100), "unbalanced: {counts:?}");
    }

    #[test]
    fn service_reports_outage_when_nothing_ready() {
        let orch = Orchestrator::new();
        let mut svc = Service::new();
        assert_eq!(svc.route(&orch, "ghost"), None);
    }

    #[test]
    fn autoscaler_tracks_load_curve() {
        let hpa = Autoscaler {
            min_replicas: 1,
            max_replicas: 8,
            target_load_per_pod: 50.0,
        };
        assert_eq!(hpa.desired_replicas(10.0), 1);
        assert_eq!(hpa.desired_replicas(120.0), 3);
        assert_eq!(hpa.desired_replicas(1e6), 8); // clamped
        let mut orch = Orchestrator::new();
        let mut rng = Rng::new(6);
        orch.apply(&[spec("v1", 1)]);
        settle(&mut orch, &mut rng, 3);
        // Morning rush: 220 rps → 5 pods.
        hpa.reconcile(&mut orch, "gourmetgram", 220.0);
        settle(&mut orch, &mut rng, 4);
        assert_eq!(orch.ready_pods("gourmetgram").len(), 5);
        // Overnight: back down to the floor.
        hpa.reconcile(&mut orch, "gourmetgram", 5.0);
        settle(&mut orch, &mut rng, 2);
        assert_eq!(orch.ready_pods("gourmetgram").len(), 1);
    }

    #[test]
    fn scale_to_zero_and_back() {
        let mut orch = Orchestrator::new();
        let mut rng = Rng::new(7);
        orch.apply(&[spec("v1", 3)]);
        settle(&mut orch, &mut rng, 4);
        orch.scale("gourmetgram", 0);
        settle(&mut orch, &mut rng, 2);
        assert!(orch.ready_pods("gourmetgram").is_empty());
        orch.scale("gourmetgram", 2);
        settle(&mut orch, &mut rng, 4);
        assert_eq!(orch.ready_pods("gourmetgram").len(), 2);
    }

    #[test]
    fn events_record_the_story() {
        let mut orch = Orchestrator::new();
        let mut rng = Rng::new(8);
        orch.apply(&[spec("v1", 2)]);
        settle(&mut orch, &mut rng, 3);
        orch.scale("gourmetgram", 4);
        settle(&mut orch, &mut rng, 3);
        let events = orch.take_events();
        assert!(events.iter().any(|e| e.contains("synced gourmetgram")));
        assert!(events.iter().any(|e| e.contains("scaled gourmetgram to 4")));
        assert!(orch.take_events().is_empty(), "take_events drains");
    }
}
