//! # opml-mlops
//!
//! The operational-ML substrate behind the course labs in *The Cost of
//! Teaching Operational ML* (SC Workshops '25). Each unit's lab deploys
//! real systems (Kubernetes, MLFlow, Ray, Triton, Argo, Prometheus-style
//! monitoring); this crate implements the **mechanisms** of those systems
//! in Rust so the simulated labs execute miniature-but-real workloads:
//!
//! | Course unit | Module(s) | What is implemented |
//! |---|---|---|
//! | 4. Model training at scale | [`tensor`], [`model`], [`precision`], [`allreduce`], [`ddp`], [`fsdp`] | dense/MLP models with real gradients, bf16 emulation, gradient accumulation, LoRA adapters, ring all-reduce (reduce-scatter + all-gather) over threads with parameter-server and tree baselines, data-parallel and fully-sharded training |
//! | 5. Training infrastructure | [`tracking`] | an MLflow-like experiment tracker: runs, params, metrics, system metrics, artifacts, concurrent ingest, best-run queries |
//! | 3. DevOps / MLOps | [`pipeline`], [`registry`], [`cicd`] | a DAG workflow engine (Argo-style) with retries and parallel stage execution; a model registry with staging/canary/production promotion; commit-triggered CI/CD with evaluation gates and auto-rollback |
//! | 6. Model serving | [`serving`], [`optimize`] | a dynamic-batching inference server simulation (Triton-style concurrency + batching) and real model-level optimizations: int8 quantization, operator fusion, magnitude pruning — applied to the actual models from [`model`] |
//! | 7. Monitoring & evaluation | [`monitoring`], [`drift`], [`eval`] | a metrics time-series store with alert rules; KS/PSI drift detection on sliding windows; offline slice/behavioural evaluation and online A/B, canary, and shadow evaluation |
//! | 8. Data systems | [`data`] | batch ETL, a broker–producer–consumer streaming pipeline over channels, and a feature store unifying both |
//!
//! Everything is deterministic given a seed and runs at laptop scale; the
//! point is that the simulated course exercises genuine implementations of
//! what the real course teaches (see DESIGN.md's substitution table).

pub mod allreduce;
pub mod cicd;
pub mod data;
pub mod ddp;
pub mod drift;
pub mod eval;
pub mod fsdp;
pub mod model;
pub mod modelparallel;
pub mod monitoring;
pub mod optimize;
pub mod orchestrator;
pub mod pipeline;
pub mod precision;
pub mod raycluster;
pub mod registry;
pub mod safety;
pub mod serving;
pub mod tensor;
pub mod tracking;

pub use allreduce::{all_reduce, AllReduceStats, ReduceAlgo};
pub use model::{Dataset, Mlp};
pub use tensor::Matrix;
