//! Pipeline model parallelism — the third distributed-training paradigm
//! the Unit 4 lecture covers alongside DDP and FSDP (§3.4: "distributed
//! data parallelism, fully sharded data parallelism, and model
//! parallelism").
//!
//! The model's layers are partitioned into **stages**, one worker thread
//! per stage, connected by channels. Micro-batches stream through the
//! pipeline GPipe-style: all forwards, then all backwards, with each
//! stage accumulating gradients across micro-batches before a
//! synchronized update. The implementation measures the **pipeline
//! bubble**: with `S` stages and `M` micro-batches, each stage is busy
//! for `M` of `M + S − 1` forward slots — the classic `(S−1)/(M+S−1)`
//! idle fraction the lecture derives.

use crate::model::{softmax_cross_entropy, Dataset, Mlp};
use crate::tensor::Matrix;
use crossbeam::channel::{unbounded, Receiver, Sender};
use opml_simkernel::{split_seed, Rng};
use serde::{Deserialize, Serialize};

/// Configuration for a pipeline-parallel run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Layer sizes `[input, hidden…, classes]`.
    pub sizes: Vec<usize>,
    /// Pipeline stages (layers are split as evenly as possible).
    pub stages: usize,
    /// Micro-batches per step (GPipe's M).
    pub micro_batches: usize,
    /// Examples per micro-batch.
    pub micro_batch_size: usize,
    /// Steps (mini-batches) per epoch × epochs, flattened.
    pub steps: usize,
    /// Learning rate.
    pub lr: f32,
    /// Master seed.
    pub seed: u64,
}

/// Outcome of a pipeline-parallel run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Final training accuracy.
    pub accuracy: f64,
    /// Mean loss of the last step.
    pub final_loss: f32,
    /// Parameters held per stage (max).
    pub max_params_per_stage: usize,
    /// Theoretical bubble fraction `(S−1)/(M+S−1)`.
    pub bubble_fraction: f64,
    /// Activations (f32 elements) sent stage-to-stage per step.
    pub activations_sent_per_step: usize,
}

/// Split `n_layers` into `stages` contiguous groups (balanced).
pub fn partition_layers(n_layers: usize, stages: usize) -> Vec<(usize, usize)> {
    assert!(
        stages >= 1 && stages <= n_layers,
        "need 1..=n_layers stages"
    );
    let base = n_layers / stages;
    let rem = n_layers % stages;
    let mut out = Vec::with_capacity(stages);
    let mut start = 0;
    for s in 0..stages {
        let len = base + usize::from(s < rem);
        out.push((start, start + len));
        start += len;
    }
    out
}

enum Flow {
    /// Forward activation for micro-batch `m`.
    Forward(usize, Matrix),
    /// Backward gradient for micro-batch `m`.
    Backward(usize, Matrix),
    /// Apply the accumulated update and start the next step.
    Step,
    /// Drain and stop.
    Stop,
}

/// Train with pipeline parallelism; returns the assembled model and the
/// report. Worker threads own disjoint layer groups; the driver feeds
/// micro-batches into stage 0 and receives losses from the last stage.
pub fn train_pipeline(cfg: &PipelineConfig, data: &Dataset) -> (Mlp, PipelineReport) {
    assert!(cfg.micro_batches >= 1 && cfg.micro_batch_size >= 1 && cfg.steps >= 1);
    let mut init_rng = Rng::new(cfg.seed);
    let model = Mlp::new(&cfg.sizes, &mut init_rng);
    let n_layers = model.layers.len();
    let parts = partition_layers(n_layers, cfg.stages);
    let max_params_per_stage = parts
        .iter()
        .map(|&(lo, hi)| {
            model.layers[lo..hi]
                .iter()
                .map(crate::model::Dense::num_params)
                .sum::<usize>()
        })
        .max()
        .expect("at least one stage");

    // One inbox per stage carries forwards (from stage−1), backwards
    // (from stage+1), and control messages; the driver has its own inbox
    // receiving the last stage's forwards and stage 0's backwards. The
    // GPipe schedule strictly separates the phases, so a single inbox
    // per endpoint is unambiguous.
    let (inbox_txs, mut inbox_rxs): (Vec<Sender<Flow>>, Vec<Option<Receiver<Flow>>>) = (0..cfg
        .stages)
        .map(|_| unbounded())
        .map(|(t, r)| (t, Some(r)))
        .unzip();
    let (driver_tx, driver_rx) = unbounded::<Flow>();

    let mut stage_models: Vec<Vec<crate::model::Dense>> = Vec::new();
    {
        let mut layers = model.layers.clone();
        for &(lo, hi) in &parts {
            stage_models.push(layers.drain(..hi - lo).collect());
            let _ = lo;
        }
    }

    let last_layer_is = |stage: usize| stage == cfg.stages - 1;
    let activations_per_micro: usize = parts
        .iter()
        .take(cfg.stages - 1)
        .map(|&(_, hi)| cfg.micro_batch_size * cfg.sizes[hi])
        .sum();

    let result: (Vec<Vec<crate::model::Dense>>, Vec<(f32, f64)>) = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for (stage, mut layers) in stage_models.into_iter().enumerate() {
            let inbox = inbox_rxs[stage].take().expect("taken once");
            let fwd_out = if stage + 1 < cfg.stages {
                inbox_txs[stage + 1].clone()
            } else {
                driver_tx.clone()
            };
            let bwd_out = if stage == 0 {
                driver_tx.clone()
            } else {
                inbox_txs[stage - 1].clone()
            };
            let is_last_overall = last_layer_is(stage);
            let n_stage_layers = layers.len();
            let lr = cfg.lr;
            let micro = cfg.micro_batches;
            handles.push(s.spawn(move || {
                // Per-micro-batch caches: relu masks per layer.
                let mut masks: Vec<Vec<Vec<bool>>> = vec![Vec::new(); micro];
                let mut inputs: Vec<Vec<Matrix>> = vec![Vec::new(); micro];
                loop {
                    match inbox.recv().expect("pipeline open") {
                        Flow::Forward(m, x) => {
                            let mut h = x;
                            masks[m].clear();
                            inputs[m].clear();
                            for (li, layer) in layers.iter_mut().enumerate() {
                                inputs[m].push(h.clone());
                                h = layer.forward(&h);
                                let apply_relu = !(is_last_overall && li + 1 == n_stage_layers);
                                if apply_relu {
                                    let mut mask = vec![false; h.len()];
                                    for (v, mk) in h.as_mut_slice().iter_mut().zip(&mut mask) {
                                        if *v > 0.0 {
                                            *mk = true;
                                        } else {
                                            *v = 0.0;
                                        }
                                    }
                                    masks[m].push(mask);
                                } else {
                                    masks[m].push(Vec::new());
                                }
                            }
                            fwd_out.send(Flow::Forward(m, h)).expect("next stage open");
                        }
                        Flow::Backward(m, dy) => {
                            let mut d = dy;
                            for li in (0..layers.len()).rev() {
                                let mask = &masks[m][li];
                                if !mask.is_empty() {
                                    for (v, &mk) in d.as_mut_slice().iter_mut().zip(mask) {
                                        if !mk {
                                            *v = 0.0;
                                        }
                                    }
                                }
                                // Re-prime the layer's cached input for
                                // this micro-batch before backward.
                                layers[li].forward(&inputs[m][li]);
                                d = layers[li].backward(&d);
                            }
                            bwd_out.send(Flow::Backward(m, d)).expect("prev stage open");
                        }
                        Flow::Step => {
                            for layer in &mut layers {
                                let gw = layer.grad_w.clone();
                                layer.w.axpy(-lr, &gw);
                                for (b, g) in layer.b.iter_mut().zip(layer.grad_b.clone()) {
                                    *b -= lr * g;
                                }
                                layer.zero_grads();
                            }
                            fwd_out.send(Flow::Step).expect("next stage open");
                        }
                        Flow::Stop => {
                            fwd_out.send(Flow::Stop).expect("next stage open");
                            return layers;
                        }
                    }
                }
            }));
        }

        // Driver: stream micro-batches, collect logits, push gradients.
        let to_first = inbox_txs[0].clone();
        let to_last = inbox_txs[cfg.stages - 1].clone();
        drop(driver_tx); // stages hold their own clones
        let mut history = Vec::new();
        let mut drv_rng = Rng::new(split_seed(cfg.seed, 0xD1));
        let mut eval_model = model.clone();
        for step in 0..cfg.steps {
            // Sample micro-batches.
            let micro: Vec<Dataset> = (0..cfg.micro_batches)
                .map(|_| {
                    let idx: Vec<usize> = (0..cfg.micro_batch_size)
                        .map(|_| drv_rng.below(data.len() as u64) as usize)
                        .collect();
                    data.subset(&idx)
                })
                .collect();
            // GPipe schedule: all forwards…
            for (m, mb) in micro.iter().enumerate() {
                to_first
                    .send(Flow::Forward(m, mb.x.clone()))
                    .expect("stage 0 open");
            }
            let mut step_loss = 0.0f32;
            let mut grads: Vec<(usize, Matrix)> = Vec::new();
            for _ in 0..cfg.micro_batches {
                let Flow::Forward(m, logits) = driver_rx.recv().expect("last stage open") else {
                    unreachable!("driver receives only forwards here");
                };
                let (loss, mut dlogits) = softmax_cross_entropy(&logits, &micro[m].y);
                // Average across micro-batches.
                dlogits.scale(1.0 / cfg.micro_batches as f32);
                step_loss += loss / cfg.micro_batches as f32;
                grads.push((m, dlogits));
            }
            // …then all backwards.
            for (m, d) in grads {
                to_last.send(Flow::Backward(m, d)).expect("last stage open");
            }
            for _ in 0..cfg.micro_batches {
                let Flow::Backward(..) = driver_rx.recv().expect("stage 0 open") else {
                    unreachable!("driver receives only backwards here");
                };
            }
            // Synchronized update.
            to_first.send(Flow::Step).expect("stage 0 open");
            let Flow::Step = driver_rx.recv().expect("last stage open") else {
                unreachable!("step barrier returns Step");
            };
            if step + 1 == cfg.steps {
                history.push((step_loss, 0.0));
            }
        }
        to_first.send(Flow::Stop).expect("stage 0 open");
        let Flow::Stop = driver_rx.recv().expect("last stage open") else {
            unreachable!("stop marker propagates");
        };
        let stage_layers: Vec<Vec<crate::model::Dense>> = handles
            .into_iter()
            .map(|h| h.join().expect("stage panicked"))
            .collect();
        // Assemble the final model for evaluation.
        let mut all = Vec::new();
        for sl in &stage_layers {
            all.extend(sl.iter().cloned());
        }
        eval_model.layers = all;
        let acc = data.accuracy(&mut eval_model);
        if let Some(last) = history.last_mut() {
            last.1 = acc;
        }
        (stage_layers, history)
    });

    let (stage_layers, history) = result;
    let mut final_model = model;
    final_model.layers = stage_layers.into_iter().flatten().collect();
    let (final_loss, accuracy) = *history.last().expect("at least one step");
    let report = PipelineReport {
        accuracy,
        final_loss,
        max_params_per_stage,
        bubble_fraction: (cfg.stages as f64 - 1.0)
            / (cfg.micro_batches as f64 + cfg.stages as f64 - 1.0),
        activations_sent_per_step: activations_per_micro * cfg.micro_batches * 2,
    };
    (final_model, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(stages: usize, micro: usize) -> PipelineConfig {
        PipelineConfig {
            sizes: vec![8, 24, 24, 11],
            stages,
            micro_batches: micro,
            micro_batch_size: 16,
            steps: 150,
            lr: 0.1,
            seed: 400,
        }
    }

    #[test]
    fn partition_is_balanced_and_complete() {
        assert_eq!(partition_layers(3, 2), vec![(0, 2), (2, 3)]);
        assert_eq!(partition_layers(4, 4), vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        let p = partition_layers(7, 3);
        assert_eq!(p.last().unwrap().1, 7);
        let sizes: Vec<usize> = p.iter().map(|&(a, b)| b - a).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn pipeline_learns_the_task() {
        let data = Dataset::blobs(440, 8, 11, 0.6, 401);
        let (mut model, report) = train_pipeline(&cfg(3, 4), &data);
        assert!(report.accuracy > 0.85, "accuracy {}", report.accuracy);
        assert!(data.accuracy(&mut model) > 0.85);
        assert!(report.final_loss < 1.0);
    }

    #[test]
    fn stage_memory_is_partitioned() {
        let data = Dataset::blobs(110, 8, 11, 0.6, 402);
        let mut c = cfg(3, 2);
        c.steps = 2;
        let (model, report) = train_pipeline(&c, &data);
        assert!(
            report.max_params_per_stage < model.num_params(),
            "stages must hold strictly less than the whole model"
        );
    }

    #[test]
    fn bubble_shrinks_with_more_micro_batches() {
        let data = Dataset::blobs(110, 8, 11, 0.6, 403);
        let mut a = cfg(3, 2);
        a.steps = 2;
        let mut b = cfg(3, 8);
        b.steps = 2;
        let (_, ra) = train_pipeline(&a, &data);
        let (_, rb) = train_pipeline(&b, &data);
        assert!((ra.bubble_fraction - 2.0 / 4.0).abs() < 1e-12);
        assert!((rb.bubble_fraction - 2.0 / 10.0).abs() < 1e-12);
        assert!(rb.bubble_fraction < ra.bubble_fraction);
    }

    #[test]
    fn single_stage_degenerates_to_plain_training() {
        let data = Dataset::blobs(440, 8, 11, 0.6, 404);
        let (_, report) = train_pipeline(&cfg(1, 2), &data);
        assert_eq!(report.bubble_fraction, 0.0);
        assert!(report.accuracy > 0.85, "accuracy {}", report.accuracy);
    }

    #[test]
    fn deterministic() {
        let data = Dataset::blobs(220, 8, 11, 0.6, 405);
        let mut c = cfg(2, 3);
        c.steps = 30;
        let (a, _) = train_pipeline(&c, &data);
        let (b, _) = train_pipeline(&c, &data);
        assert_eq!(a.params_flat(), b.params_flat());
    }
}
