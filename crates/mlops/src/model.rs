//! Real (small) neural models with exact gradients.
//!
//! The course's GourmetGram example is an 11-class food photo classifier;
//! our stand-in is an MLP over synthetic Gaussian-blob features
//! ([`Dataset::blobs`]) — small enough to train in milliseconds, real
//! enough that quantization, pruning, LoRA, distributed gradient averaging
//! and drift detection all act on genuine learned parameters.

use crate::tensor::Matrix;
use opml_simkernel::Rng;
use serde::{Deserialize, Serialize};

/// A fully-connected layer `y = x·W + b` with cached activations for the
/// backward pass and accumulated gradients (supports gradient
/// accumulation across micro-batches — Unit 4's first memory trick).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    /// Weights, shape `(in, out)`.
    pub w: Matrix,
    /// Bias, length `out`.
    pub b: Vec<f32>,
    /// Accumulated weight gradient.
    pub grad_w: Matrix,
    /// Accumulated bias gradient.
    pub grad_b: Vec<f32>,
    #[serde(skip)]
    input: Option<Matrix>,
}

impl Dense {
    /// New layer with Kaiming-uniform weights and zero bias.
    pub fn new(inputs: usize, outputs: usize, rng: &mut Rng) -> Self {
        Dense {
            w: Matrix::kaiming(inputs, outputs, rng),
            b: vec![0.0; outputs],
            grad_w: Matrix::zeros(inputs, outputs),
            grad_b: vec![0.0; outputs],
            input: None,
        }
    }

    /// Forward pass; caches the input for backward.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.w);
        for r in 0..y.rows() {
            let row = y.row_mut(r);
            for (v, b) in row.iter_mut().zip(&self.b) {
                *v += b;
            }
        }
        self.input = Some(x.clone());
        y
    }

    /// Backward pass: accumulates `grad_w`, `grad_b`; returns `dL/dx`.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let x = self.input.as_ref().expect("backward before forward");
        // grad_w += xᵀ · dy
        self.grad_w.axpy(1.0, &x.transpose().matmul(dy));
        for r in 0..dy.rows() {
            for (g, &d) in self.grad_b.iter_mut().zip(dy.row(r)) {
                *g += d;
            }
        }
        dy.matmul(&self.w.transpose())
    }

    /// Reset accumulated gradients.
    pub fn zero_grads(&mut self) {
        self.grad_w.fill_zero();
        self.grad_b.fill(0.0);
    }

    /// Parameter count.
    pub fn num_params(&self) -> usize {
        self.w.len() + self.b.len()
    }
}

/// An MLP with ReLU activations between layers and a linear head.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    /// Layers in order.
    pub layers: Vec<Dense>,
    #[serde(skip)]
    relu_masks: Vec<Vec<bool>>,
}

impl Mlp {
    /// Build an MLP; `sizes` is `[input, hidden…, output]`.
    pub fn new(sizes: &[usize], rng: &mut Rng) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let layers = sizes
            .windows(2)
            .map(|w| Dense::new(w[0], w[1], rng))
            .collect();
        Mlp {
            layers,
            relu_masks: Vec::new(),
        }
    }

    /// Forward pass producing logits, shape `(batch, classes)`.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        self.relu_masks.clear();
        let mut h = x.clone();
        let n = self.layers.len();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            h = layer.forward(&h);
            if i + 1 < n {
                let mut mask = vec![false; h.len()];
                for (v, m) in h.as_mut_slice().iter_mut().zip(&mut mask) {
                    if *v > 0.0 {
                        *m = true;
                    } else {
                        *v = 0.0;
                    }
                }
                self.relu_masks.push(mask);
            }
        }
        h
    }

    /// Backward pass from `dL/dlogits`; accumulates into layer grads.
    pub fn backward(&mut self, dlogits: &Matrix) {
        let mut d = dlogits.clone();
        let n = self.layers.len();
        for (i, layer) in self.layers.iter_mut().enumerate().rev() {
            if i + 1 < n {
                let mask = &self.relu_masks[i];
                for (v, &m) in d.as_mut_slice().iter_mut().zip(mask) {
                    if !m {
                        *v = 0.0;
                    }
                }
            }
            d = layer.backward(&d);
        }
    }

    /// Zero all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for l in &mut self.layers {
            l.zero_grads();
        }
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(Dense::num_params).sum()
    }

    /// Copy all parameters into a flat buffer (order: per layer, W then b).
    pub fn params_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        for l in &self.layers {
            out.extend_from_slice(l.w.as_slice());
            out.extend_from_slice(&l.b);
        }
        out
    }

    /// Overwrite all parameters from a flat buffer.
    pub fn set_params_flat(&mut self, flat: &[f32]) {
        assert_eq!(
            flat.len(),
            self.num_params(),
            "flat parameter size mismatch"
        );
        let mut off = 0;
        for l in &mut self.layers {
            let wl = l.w.len();
            l.w.as_mut_slice().copy_from_slice(&flat[off..off + wl]);
            off += wl;
            let bl = l.b.len();
            l.b.copy_from_slice(&flat[off..off + bl]);
            off += bl;
        }
    }

    /// Copy all accumulated gradients into a flat buffer (same layout).
    pub fn grads_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        for l in &self.layers {
            out.extend_from_slice(l.grad_w.as_slice());
            out.extend_from_slice(&l.grad_b);
        }
        out
    }

    /// Overwrite all accumulated gradients from a flat buffer.
    pub fn set_grads_flat(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.num_params(), "flat gradient size mismatch");
        let mut off = 0;
        for l in &mut self.layers {
            let wl = l.grad_w.len();
            l.grad_w
                .as_mut_slice()
                .copy_from_slice(&flat[off..off + wl]);
            off += wl;
            let bl = l.grad_b.len();
            l.grad_b.copy_from_slice(&flat[off..off + bl]);
            off += bl;
        }
    }

    /// Class predictions (argmax of logits).
    pub fn predict(&mut self, x: &Matrix) -> Vec<usize> {
        let logits = self.forward(x);
        (0..logits.rows())
            .map(|r| {
                logits
                    .row(r)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("logit NaN"))
                    .expect("non-empty row")
                    .0
            })
            .collect()
    }
}

/// Softmax cross-entropy; returns `(mean loss, dL/dlogits)`.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[usize]) -> (f32, Matrix) {
    assert_eq!(logits.rows(), labels.len(), "labels/batch mismatch");
    let batch = logits.rows() as f32;
    let mut dlogits = logits.clone();
    let mut loss = 0.0;
    for r in 0..logits.rows() {
        let row = dlogits.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
        let p = row[labels[r]].max(1e-12);
        loss -= p.ln();
        row[labels[r]] -= 1.0;
        for v in row.iter_mut() {
            *v /= batch;
        }
    }
    (loss / batch, dlogits)
}

/// Plain SGD with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 = vanilla SGD).
    pub momentum: f32,
    velocity: Option<Vec<f32>>,
}

impl Sgd {
    /// New optimizer.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: None,
        }
    }

    /// Apply one update from the model's accumulated gradients, then zero
    /// them.
    pub fn step(&mut self, model: &mut Mlp) {
        let grads = model.grads_flat();
        let mut params = model.params_flat();
        if self.momentum > 0.0 {
            let v = self.velocity.get_or_insert_with(|| vec![0.0; grads.len()]);
            assert_eq!(v.len(), grads.len(), "optimizer bound to another model");
            for ((p, g), vel) in params.iter_mut().zip(&grads).zip(v.iter_mut()) {
                *vel = self.momentum * *vel + g;
                *p -= self.lr * *vel;
            }
        } else {
            for (p, g) in params.iter_mut().zip(&grads) {
                *p -= self.lr * g;
            }
        }
        model.set_params_flat(&params);
        model.zero_grads();
    }
}

/// A labelled dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Features, shape `(n, dim)`.
    pub x: Matrix,
    /// Labels in `0..classes`.
    pub y: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

impl Dataset {
    /// Gaussian blobs: `classes` clusters in `dim` dimensions with the
    /// given within-cluster spread. The GourmetGram stand-in uses 11
    /// classes ("food-11").
    pub fn blobs(n: usize, dim: usize, classes: usize, spread: f64, seed: u64) -> Dataset {
        let mut rng = Rng::new(seed);
        // Cluster centres on a scaled hypercube-ish lattice.
        let centres: Vec<Vec<f32>> = (0..classes)
            .map(|_| (0..dim).map(|_| rng.range_f64(-3.0, 3.0) as f32).collect())
            .collect();
        let mut x = Matrix::zeros(n, dim);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % classes;
            y.push(c);
            for (d, &centre) in centres[c].iter().enumerate() {
                x.set(i, d, centre + rng.normal_with(0.0, spread) as f32);
            }
        }
        Dataset { x, y, classes }
    }

    /// Shift every feature by `delta` — the synthetic "data drift" used by
    /// the Unit 7 lab substrate.
    pub fn shifted(&self, delta: f32) -> Dataset {
        let mut x = self.x.clone();
        for v in x.as_mut_slice() {
            *v += delta;
        }
        Dataset {
            x,
            y: self.y.clone(),
            classes: self.classes,
        }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Row subset by indices.
    pub fn subset(&self, idx: &[usize]) -> Dataset {
        let mut x = Matrix::zeros(idx.len(), self.x.cols());
        let mut y = Vec::with_capacity(idx.len());
        for (r, &i) in idx.iter().enumerate() {
            x.row_mut(r).copy_from_slice(self.x.row(i));
            y.push(self.y[i]);
        }
        Dataset {
            x,
            y,
            classes: self.classes,
        }
    }

    /// Split into `k` contiguous shards (data-parallel workers).
    pub fn shards(&self, k: usize) -> Vec<Dataset> {
        assert!(k > 0);
        let per = self.len().div_ceil(k);
        (0..k)
            .map(|w| {
                let lo = (w * per).min(self.len());
                let hi = ((w + 1) * per).min(self.len());
                self.subset(&(lo..hi).collect::<Vec<_>>())
            })
            .collect()
    }

    /// Train/test split at `frac` (shuffled deterministically).
    pub fn split(&self, frac: f64, seed: u64) -> (Dataset, Dataset) {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        Rng::new(seed).shuffle(&mut idx);
        let cut = (self.len() as f64 * frac) as usize;
        (self.subset(&idx[..cut]), self.subset(&idx[cut..]))
    }

    /// Accuracy of a model on this dataset.
    pub fn accuracy(&self, model: &mut Mlp) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let preds = model.predict(&self.x);
        let hits = preds.iter().zip(&self.y).filter(|(p, y)| p == y).count();
        hits as f64 / self.len() as f64
    }
}

/// One epoch of minibatch SGD; returns `(mean loss, train accuracy)`.
pub fn train_epoch(
    model: &mut Mlp,
    data: &Dataset,
    opt: &mut Sgd,
    batch_size: usize,
    rng: &mut Rng,
) -> (f32, f64) {
    assert!(batch_size > 0);
    let mut idx: Vec<usize> = (0..data.len()).collect();
    rng.shuffle(&mut idx);
    let mut total_loss = 0.0;
    let mut batches = 0;
    for chunk in idx.chunks(batch_size) {
        let batch = data.subset(chunk);
        let logits = model.forward(&batch.x);
        let (loss, dlogits) = softmax_cross_entropy(&logits, &batch.y);
        model.backward(&dlogits);
        opt.step(model);
        total_loss += loss;
        batches += 1;
    }
    let acc = data.accuracy(model);
    (total_loss / batches.max(1) as f32, acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradient_check_finite_differences() {
        // Exact gradients vs central differences on a tiny model.
        let mut rng = Rng::new(1);
        let mut model = Mlp::new(&[3, 4, 2], &mut rng);
        let data = Dataset::blobs(8, 3, 2, 0.5, 2);
        let logits = model.forward(&data.x);
        let (_, dlogits) = softmax_cross_entropy(&logits, &data.y);
        model.zero_grads();
        let logits = model.forward(&data.x);
        let (_, dlogits2) = softmax_cross_entropy(&logits, &data.y);
        assert_eq!(dlogits.as_slice(), dlogits2.as_slice());
        model.backward(&dlogits);
        let analytic = model.grads_flat();
        let mut params = model.params_flat();
        let eps = 1e-3f32;
        // Check a spread of parameter indices.
        for &i in &[0usize, 3, 7, 11, params.len() - 1, params.len() / 2] {
            let orig = params[i];
            params[i] = orig + eps;
            model.set_params_flat(&params);
            let (lp, _) = softmax_cross_entropy(&model.forward(&data.x), &data.y);
            params[i] = orig - eps;
            model.set_params_flat(&params);
            let (lm, _) = softmax_cross_entropy(&model.forward(&data.x), &data.y);
            params[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic[i]).abs() < 2e-2,
                "param {i}: numeric {numeric} vs analytic {}",
                analytic[i]
            );
        }
    }

    #[test]
    fn training_learns_blobs() {
        let mut rng = Rng::new(10);
        let data = Dataset::blobs(440, 8, 11, 0.6, 11);
        let (train, test) = data.split(0.8, 12);
        let mut model = Mlp::new(&[8, 32, 11], &mut rng);
        let before = test.accuracy(&mut model);
        let mut opt = Sgd::new(0.1, 0.9);
        let mut last_loss = f32::INFINITY;
        for _ in 0..30 {
            let (loss, _) = train_epoch(&mut model, &train, &mut opt, 32, &mut rng);
            last_loss = loss;
        }
        let after = test.accuracy(&mut model);
        assert!(after > 0.9, "test accuracy {after} (before {before})");
        assert!(last_loss < 0.5, "final loss {last_loss}");
    }

    #[test]
    fn params_roundtrip() {
        let mut rng = Rng::new(2);
        let mut model = Mlp::new(&[4, 8, 3], &mut rng);
        let flat = model.params_flat();
        assert_eq!(flat.len(), model.num_params());
        assert_eq!(model.num_params(), 4 * 8 + 8 + 8 * 3 + 3);
        let mut doubled = flat.clone();
        for v in &mut doubled {
            *v *= 2.0;
        }
        model.set_params_flat(&doubled);
        assert_eq!(model.params_flat(), doubled);
    }

    #[test]
    fn grad_accumulation_equals_sum() {
        // backward twice without zero_grads accumulates (micro-batching).
        let mut rng = Rng::new(3);
        let mut model = Mlp::new(&[3, 2], &mut rng);
        let data = Dataset::blobs(6, 3, 2, 0.4, 4);
        let logits = model.forward(&data.x);
        let (_, d) = softmax_cross_entropy(&logits, &data.y);
        model.backward(&d);
        let once = model.grads_flat();
        model.forward(&data.x);
        model.backward(&d);
        let twice = model.grads_flat();
        for (a, b) in once.iter().zip(&twice) {
            assert!((2.0 * a - b).abs() < 1e-4, "{a} {b}");
        }
    }

    #[test]
    fn softmax_xent_prefers_correct_class() {
        // Logits strongly favouring the right class → low loss.
        let logits = Matrix::from_vec(2, 3, vec![10.0, 0.0, 0.0, 0.0, 10.0, 0.0]);
        let (loss, d) = softmax_cross_entropy(&logits, &[0, 1]);
        assert!(loss < 0.01);
        // Gradient points away from the true class (negative there).
        assert!(d.get(0, 0) < 0.0 && d.get(1, 1) < 0.0);
    }

    #[test]
    fn dataset_shards_cover_everything() {
        let data = Dataset::blobs(103, 4, 5, 0.5, 9);
        let shards = data.shards(4);
        assert_eq!(shards.iter().map(Dataset::len).sum::<usize>(), 103);
        assert_eq!(shards.len(), 4);
        // Labels preserved.
        let mut rebuilt: Vec<usize> = shards.iter().flat_map(|s| s.y.clone()).collect();
        assert_eq!(rebuilt.len(), data.y.len());
        rebuilt.sort_unstable();
        let mut orig = data.y.clone();
        orig.sort_unstable();
        assert_eq!(rebuilt, orig);
    }

    #[test]
    fn shifted_moves_features_only() {
        let d = Dataset::blobs(10, 2, 2, 0.1, 1);
        let s = d.shifted(5.0);
        assert_eq!(s.y, d.y);
        assert!((s.x.get(0, 0) - d.x.get(0, 0) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn momentum_differs_from_vanilla() {
        let rng = Rng::new(4);
        let data = Dataset::blobs(64, 4, 2, 0.5, 5);
        let make = |rng: &mut Rng| Mlp::new(&[4, 8, 2], rng);
        let mut rng_a = Rng::new(7);
        let mut a = make(&mut rng_a);
        let mut rng_b = Rng::new(7);
        let mut b = make(&mut rng_b);
        assert_eq!(a.params_flat(), b.params_flat());
        let mut opt_a = Sgd::new(0.05, 0.0);
        let mut opt_b = Sgd::new(0.05, 0.9);
        for _ in 0..3 {
            let mut r1 = Rng::new(8);
            train_epoch(&mut a, &data, &mut opt_a, 16, &mut r1);
            let mut r2 = Rng::new(8);
            train_epoch(&mut b, &data, &mut opt_b, 16, &mut r2);
        }
        assert_ne!(a.params_flat(), b.params_flat());
        let _ = rng;
    }
}
