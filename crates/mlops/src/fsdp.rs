//! Fully-sharded data parallelism (FSDP / ZeRO-3 style).
//!
//! DDP replicates the whole model on every worker; FSDP shards the
//! parameters and optimizer state so each worker *persistently* stores
//! only `1/K` of them, paying for it with an **all-gather** of parameters
//! before compute and a **reduce-scatter** of gradients after (§3.4 covers
//! fully sharded data parallelism as the second distributed paradigm).
//!
//! The implementation is faithful to those dataflows: parameters live only
//! as shards between steps; the full flat buffer is materialized
//! transiently for forward/backward (the memory accounting in
//! [`FsdpReport`] captures exactly that trade).

use crate::allreduce::chunk_bounds;
use crate::model::{softmax_cross_entropy, Dataset, Mlp};
use opml_simkernel::{split_seed, Rng};
use serde::{Deserialize, Serialize};

/// Configuration for an FSDP run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FsdpConfig {
    /// Layer sizes `[input, hidden…, classes]`.
    pub sizes: Vec<usize>,
    /// Number of workers (shards).
    pub workers: usize,
    /// Epochs.
    pub epochs: usize,
    /// Per-worker mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Momentum (per-shard optimizer state — the whole point of sharding).
    pub momentum: f32,
    /// Master seed.
    pub seed: u64,
}

/// Outcome of an FSDP run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FsdpReport {
    /// `(mean loss, accuracy)` per epoch.
    pub history: Vec<(f32, f64)>,
    /// Parameters held persistently per worker (its shard).
    pub persistent_params_per_worker: usize,
    /// Peak transient parameters per worker (full model during compute).
    pub peak_params_per_worker: usize,
    /// Total collective bytes sent per worker (all-gather + reduce-scatter,
    /// ring formulas).
    pub comm_bytes_per_worker: usize,
    /// Optimizer state elements per worker.
    pub optimizer_state_per_worker: usize,
}

/// Train with FSDP semantics; returns the final assembled model + report.
pub fn train_fsdp(cfg: &FsdpConfig, data: &Dataset) -> (Mlp, FsdpReport) {
    assert!(cfg.workers > 0 && cfg.epochs > 0 && cfg.batch_size > 0);
    let k = cfg.workers;
    let mut init_rng = Rng::new(cfg.seed);
    let mut model = Mlp::new(&cfg.sizes, &mut init_rng);
    let total = model.num_params();
    let bounds = chunk_bounds(total, k);

    // Persistent state: parameter shards + momentum shards.
    let full_init = model.params_flat();
    let mut param_shards: Vec<Vec<f32>> = bounds
        .iter()
        .map(|&(lo, hi)| full_init[lo..hi].to_vec())
        .collect();
    let mut momentum_shards: Vec<Vec<f32>> =
        bounds.iter().map(|&(lo, hi)| vec![0.0; hi - lo]).collect();

    let shards = data.shards(k);
    let mut history = Vec::with_capacity(cfg.epochs);
    let mut comm_bytes_per_worker = 0usize;
    // Ring all-gather and reduce-scatter each move (K−1)/K of the buffer
    // per worker per invocation.
    let per_collective = if k > 1 {
        (k - 1) * (total / k).max(1) * 4
    } else {
        0
    };

    for epoch in 0..cfg.epochs {
        let orders: Vec<Vec<usize>> = (0..k)
            .map(|w| {
                let mut idx: Vec<usize> = (0..shards[w].len()).collect();
                Rng::new(split_seed(cfg.seed, (epoch * k + w) as u64 + 1)).shuffle(&mut idx);
                idx
            })
            .collect();
        let steps = orders
            .iter()
            .map(|o| o.len().div_ceil(cfg.batch_size))
            .max()
            .unwrap_or(0);
        let mut epoch_loss = 0.0f32;

        for step in 0..steps {
            // ALL-GATHER: assemble the full parameter buffer from shards.
            let mut full = vec![0.0f32; total];
            for (shard, &(lo, hi)) in param_shards.iter().zip(&bounds) {
                full[lo..hi].copy_from_slice(shard);
            }
            comm_bytes_per_worker += per_collective; // gather phase

            // Parallel compute: every worker runs the full model on its
            // own batch (each materializes `full` transiently).
            let grads: Vec<(f32, Vec<f32>)> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..k)
                    .map(|w| {
                        let mut replica = model.clone();
                        let full = &full;
                        let shard = &shards[w];
                        let order = &orders[w];
                        s.spawn(move || {
                            replica.set_params_flat(full);
                            replica.zero_grads();
                            let lo = step * cfg.batch_size;
                            if lo >= order.len() {
                                return (0.0, replica.grads_flat());
                            }
                            let hi = (lo + cfg.batch_size).min(order.len());
                            let batch = shard.subset(&order[lo..hi]);
                            let logits = replica.forward(&batch.x);
                            let (loss, d) = softmax_cross_entropy(&logits, &batch.y);
                            replica.backward(&d);
                            (loss, replica.grads_flat())
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("fsdp worker panicked"))
                    .collect()
            });
            epoch_loss += grads.iter().map(|(l, _)| l).sum::<f32>() / k as f32;

            // REDUCE-SCATTER: each worker keeps only its shard of the
            // averaged gradient, then applies its shard of the update.
            comm_bytes_per_worker += per_collective;
            let scale = 1.0 / k as f32;
            for (w, &(lo, hi)) in bounds.iter().enumerate() {
                let mut gshard = vec![0.0f32; hi - lo];
                for (_, g) in &grads {
                    for (dst, &src) in gshard.iter_mut().zip(&g[lo..hi]) {
                        *dst += src * scale;
                    }
                }
                let pshard = &mut param_shards[w];
                let mshard = &mut momentum_shards[w];
                for ((p, m), g) in pshard.iter_mut().zip(mshard.iter_mut()).zip(&gshard) {
                    *m = cfg.momentum * *m + g;
                    *p -= cfg.lr * *m;
                }
            }
        }

        // Evaluate on the assembled model.
        let mut full = vec![0.0f32; total];
        for (shard, &(lo, hi)) in param_shards.iter().zip(&bounds) {
            full[lo..hi].copy_from_slice(shard);
        }
        model.set_params_flat(&full);
        let acc = data.accuracy(&mut model);
        history.push((epoch_loss / steps.max(1) as f32, acc));
    }

    let persistent = bounds.iter().map(|&(lo, hi)| hi - lo).max().unwrap_or(0);
    let report = FsdpReport {
        history,
        persistent_params_per_worker: persistent,
        peak_params_per_worker: total,
        comm_bytes_per_worker,
        optimizer_state_per_worker: persistent,
    };
    (model, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allreduce::ReduceAlgo;
    use crate::ddp::{train_ddp, DdpConfig};

    fn cfg(workers: usize) -> FsdpConfig {
        FsdpConfig {
            sizes: vec![8, 24, 11],
            workers,
            epochs: 12,
            batch_size: 16,
            lr: 0.1,
            momentum: 0.9,
            seed: 88,
        }
    }

    #[test]
    fn fsdp_learns_the_task() {
        let data = Dataset::blobs(440, 8, 11, 0.6, 80);
        let (mut model, report) = train_fsdp(&cfg(4), &data);
        assert!(
            report.history.last().unwrap().1 > 0.85,
            "{:?}",
            report.history.last()
        );
        assert!(data.accuracy(&mut model) > 0.85);
    }

    #[test]
    fn persistent_memory_is_sharded() {
        let data = Dataset::blobs(110, 8, 11, 0.6, 81);
        let mut c = cfg(4);
        c.epochs = 1;
        let (model, report) = train_fsdp(&c, &data);
        let total = model.num_params();
        assert!(report.persistent_params_per_worker <= total.div_ceil(4) + 4);
        assert_eq!(report.peak_params_per_worker, total);
        assert_eq!(
            report.optimizer_state_per_worker,
            report.persistent_params_per_worker
        );
    }

    #[test]
    fn fsdp_matches_ddp_quality() {
        // Same task, same budget: the two paradigms should reach similar
        // accuracy (they differ only in where state lives).
        let data = Dataset::blobs(440, 8, 11, 0.6, 82);
        let (_, fsdp) = train_fsdp(&cfg(4), &data);
        let ddp_cfg = DdpConfig {
            sizes: vec![8, 24, 11],
            workers: 4,
            epochs: 12,
            batch_size: 16,
            lr: 0.1,
            momentum: 0.9,
            algo: ReduceAlgo::Ring,
            seed: 88,
        };
        let (_, ddp) = train_ddp(&ddp_cfg, &data);
        let (fa, da) = (
            fsdp.history.last().unwrap().1,
            ddp.history.last().unwrap().1,
        );
        assert!((fa - da).abs() < 0.12, "fsdp {fa} vs ddp {da}");
    }

    #[test]
    fn comm_grows_with_workers() {
        let data = Dataset::blobs(220, 8, 11, 0.6, 83);
        let mut c1 = cfg(1);
        c1.epochs = 2;
        let mut c4 = cfg(4);
        c4.epochs = 2;
        let (_, r1) = train_fsdp(&c1, &data);
        let (_, r4) = train_fsdp(&c4, &data);
        assert_eq!(
            r1.comm_bytes_per_worker, 0,
            "single worker needs no collectives"
        );
        assert!(r4.comm_bytes_per_worker > 0);
    }

    #[test]
    fn deterministic() {
        let data = Dataset::blobs(220, 8, 11, 0.6, 84);
        let mut c = cfg(3);
        c.epochs = 3;
        let (a, _) = train_fsdp(&c, &data);
        let (b, _) = train_fsdp(&c, &data);
        assert_eq!(a.params_flat(), b.params_flat());
    }
}
