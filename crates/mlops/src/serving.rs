//! Inference serving with concurrency and dynamic batching — Unit 6.
//!
//! The lab's third part "explored system-level optimizations using NVIDIA
//! Triton Inference Server, including concurrency, dynamic batching, and
//! scaling across multiple GPUs or multiple model instances" (§3.6). This
//! module is a deterministic discrete-event simulation of exactly that
//! server architecture:
//!
//! * requests arrive (open-loop Poisson),
//! * a **dynamic batcher** groups them: a batch dispatches when a replica
//!   is free and either the queue reaches `max_batch` or the oldest
//!   request has waited `max_queue_delay_ms`,
//! * `replicas` model instances execute batches concurrently,
//! * batch service time follows the [`ModelProfile`] cost model
//!   `base + per_item · batch` — the affine shape that makes batching pay
//!   (amortizing the fixed kernel-launch/weight-read cost).
//!
//! Profiles for optimized/edge variants come from [`crate::optimize`]'s
//! measured speedups; the bench `bench_serving` sweeps batch size and
//! concurrency to reproduce the lab's latency/throughput trade-off curves.

use opml_simkernel::stats::percentile_sorted;
use opml_simkernel::Rng;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

/// Affine batch-latency model: `latency(k) = base_ms + per_item_ms·k`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Fixed per-batch cost (kernel launch, weight streaming).
    pub base_ms: f64,
    /// Marginal per-request cost.
    pub per_item_ms: f64,
}

impl ModelProfile {
    /// FP32 image classifier on a server GPU (A100/A30 class).
    pub fn fp32_server_gpu() -> Self {
        ModelProfile {
            base_ms: 8.0,
            per_item_ms: 1.2,
        }
    }

    /// The same model graph-optimized + INT8-quantized (ONNX Runtime path
    /// in the lab): lower fixed and marginal cost.
    pub fn int8_server_gpu() -> Self {
        ModelProfile {
            base_ms: 4.5,
            per_item_ms: 0.55,
        }
    }

    /// FP32 on a server CPU.
    pub fn fp32_server_cpu() -> Self {
        ModelProfile {
            base_ms: 15.0,
            per_item_ms: 22.0,
        }
    }

    /// INT8 on a Raspberry Pi 5 (the CHI\@Edge lab part): big fixed and
    /// marginal costs; batching barely helps because compute, not launch
    /// overhead, dominates.
    pub fn int8_edge_pi5() -> Self {
        ModelProfile {
            base_ms: 25.0,
            per_item_ms: 95.0,
        }
    }

    /// Service time of a batch of `k` requests, in ms.
    pub fn batch_ms(&self, k: usize) -> f64 {
        assert!(k > 0);
        self.base_ms + self.per_item_ms * k as f64
    }

    /// Peak throughput (req/s) at a given batch size, one replica.
    pub fn peak_rps(&self, batch: usize) -> f64 {
        batch as f64 / self.batch_ms(batch) * 1000.0
    }
}

/// Server configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Concurrent model instances (Triton "instance groups").
    pub replicas: usize,
    /// Dynamic batcher: max requests per batch (1 = batching off).
    pub max_batch: usize,
    /// Dynamic batcher: max time the oldest request may wait before the
    /// batch dispatches anyway.
    pub max_queue_delay_ms: f64,
}

impl ServerConfig {
    /// No batching, single instance — the lab's baseline configuration.
    pub fn baseline() -> Self {
        ServerConfig {
            replicas: 1,
            max_batch: 1,
            max_queue_delay_ms: 0.0,
        }
    }
}

/// Open-loop load: Poisson arrivals at `rps` for `requests` requests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadSpec {
    /// Offered requests per second.
    pub rps: f64,
    /// Total requests to send.
    pub requests: usize,
}

/// Result of a serving simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServingReport {
    /// Requests completed.
    pub completed: usize,
    /// Mean end-to-end latency (queue + service), ms.
    pub mean_latency_ms: f64,
    /// Median latency, ms.
    pub p50_latency_ms: f64,
    /// 95th percentile latency, ms.
    pub p95_latency_ms: f64,
    /// 99th percentile latency, ms.
    pub p99_latency_ms: f64,
    /// Achieved throughput over the busy interval, req/s.
    pub throughput_rps: f64,
    /// Mean dispatched batch size.
    pub mean_batch_size: f64,
    /// Number of batches executed.
    pub batches: usize,
}

/// Run the discrete-event serving simulation.
///
/// ```
/// use opml_mlops::serving::{simulate, LoadSpec, ModelProfile, ServerConfig};
/// let report = simulate(
///     ModelProfile::int8_server_gpu(),
///     ServerConfig { replicas: 2, max_batch: 8, max_queue_delay_ms: 5.0 },
///     LoadSpec { rps: 100.0, requests: 500 },
///     42,
/// );
/// assert_eq!(report.completed, 500);
/// assert!(report.p50_latency_ms <= report.p99_latency_ms);
/// ```
pub fn simulate(
    profile: ModelProfile,
    server: ServerConfig,
    load: LoadSpec,
    seed: u64,
) -> ServingReport {
    assert!(server.replicas > 0 && server.max_batch > 0);
    assert!(load.rps > 0.0 && load.requests > 0);
    let mut rng = Rng::new(seed);
    // Pre-generate arrival times (ms).
    let mean_gap_ms = 1000.0 / load.rps;
    let mut arrivals = Vec::with_capacity(load.requests);
    let mut t = 0.0f64;
    for _ in 0..load.requests {
        t += rng.exponential(mean_gap_ms);
        arrivals.push(t);
    }

    let mut next_arrival = 0usize; // index into arrivals
    let mut queue: VecDeque<f64> = VecDeque::new(); // arrival times of queued requests
                                                    // Min-heap of replica completion times (f64 as ordered bits).
    let mut busy: BinaryHeap<Reverse<u64>> = BinaryHeap::new();
    let mut free_replicas = server.replicas;
    let mut latencies: Vec<f64> = Vec::with_capacity(load.requests);
    let mut batches = 0usize;
    let mut batch_size_sum = 0usize;
    let mut now = 0.0f64;
    let mut last_completion = 0.0f64;

    let to_bits = |x: f64| -> u64 { x.to_bits() }; // all times are non-negative finite
    let from_bits = |b: u64| -> f64 { f64::from_bits(b) };
    // Tolerance for the batching-timer comparison: `(front + delay) −
    // front` can round to just below `delay` in f64, which would
    // otherwise stall the event loop at the timer instant forever.
    const TIMER_EPS_MS: f64 = 1e-6;
    // Progress guard: the loop handles at most one arrival, one timer,
    // and a completion sweep per iteration, so a healthy run is bounded.
    let max_iterations = 16 * load.requests + 1_024;
    let mut iterations = 0usize;

    loop {
        iterations += 1;
        assert!(
            iterations <= max_iterations,
            "serving simulation stopped making progress at t={now} ms \
             (queue {}, free {free_replicas})",
            queue.len()
        );
        // Dispatch as many batches as the policy allows at `now`.
        while free_replicas > 0 && !queue.is_empty() {
            let oldest_wait = now - queue.front().copied().expect("non-empty");
            let full = queue.len() >= server.max_batch;
            let timed_out = oldest_wait >= server.max_queue_delay_ms - TIMER_EPS_MS;
            let drained = next_arrival >= arrivals.len(); // no more arrivals: flush
            if !(full || timed_out || drained) {
                break;
            }
            let k = queue.len().min(server.max_batch);
            let done = now + profile.batch_ms(k);
            for _ in 0..k {
                let arr = queue.pop_front().expect("counted");
                latencies.push(done - arr);
            }
            batches += 1;
            batch_size_sum += k;
            free_replicas -= 1;
            busy.push(Reverse(to_bits(done)));
            last_completion = last_completion.max(done);
        }
        // Next event: arrival, completion, or batching timer.
        let t_arrival = arrivals.get(next_arrival).copied();
        let t_completion = busy.peek().map(|&Reverse(b)| from_bits(b));
        let t_timer = if free_replicas > 0 && !queue.is_empty() && server.max_queue_delay_ms > 0.0 {
            queue.front().map(|&a| a + server.max_queue_delay_ms)
        } else {
            None
        };
        let next = [t_arrival, t_completion, t_timer]
            .into_iter()
            .flatten()
            .fold(f64::INFINITY, f64::min);
        if !next.is_finite() {
            break;
        }
        now = now.max(next);
        if t_arrival.is_some_and(|a| a <= now) {
            queue.push_back(arrivals[next_arrival]);
            next_arrival += 1;
        }
        while busy.peek().is_some_and(|&Reverse(b)| from_bits(b) <= now) {
            busy.pop();
            free_replicas += 1;
        }
    }
    assert!(queue.is_empty(), "requests stranded in queue");
    assert_eq!(latencies.len(), load.requests);

    let mut sorted = latencies.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latency NaN"));
    let span_s = (last_completion - arrivals[0]).max(1e-9) / 1000.0;
    ServingReport {
        completed: latencies.len(),
        mean_latency_ms: latencies.iter().sum::<f64>() / latencies.len() as f64,
        p50_latency_ms: percentile_sorted(&sorted, 50.0),
        p95_latency_ms: percentile_sorted(&sorted, 95.0),
        p99_latency_ms: percentile_sorted(&sorted, 99.0),
        throughput_rps: latencies.len() as f64 / span_s,
        mean_batch_size: batch_size_sum as f64 / batches.max(1) as f64,
        batches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_math() {
        let p = ModelProfile::fp32_server_gpu();
        assert_eq!(p.batch_ms(1), 9.2);
        assert_eq!(p.batch_ms(8), 8.0 + 9.6);
        // Batching raises peak throughput.
        assert!(p.peak_rps(8) > 3.0 * p.peak_rps(1));
    }

    #[test]
    fn all_requests_complete() {
        let r = simulate(
            ModelProfile::fp32_server_gpu(),
            ServerConfig {
                replicas: 2,
                max_batch: 8,
                max_queue_delay_ms: 5.0,
            },
            LoadSpec {
                rps: 200.0,
                requests: 2000,
            },
            1,
        );
        assert_eq!(r.completed, 2000);
        assert!(r.mean_latency_ms > 0.0);
        assert!(r.mean_batch_size >= 1.0);
    }

    #[test]
    fn batching_survives_overload_where_baseline_collapses() {
        // Offered 150 rps; baseline capacity = 1000/9.2 ≈ 109 rps → queue
        // grows without bound; batched capacity at batch 8 ≈ 455 rps.
        let load = LoadSpec {
            rps: 150.0,
            requests: 3000,
        };
        let base = simulate(
            ModelProfile::fp32_server_gpu(),
            ServerConfig::baseline(),
            load,
            2,
        );
        let batched = simulate(
            ModelProfile::fp32_server_gpu(),
            ServerConfig {
                replicas: 1,
                max_batch: 8,
                max_queue_delay_ms: 10.0,
            },
            load,
            2,
        );
        assert!(
            batched.p95_latency_ms < base.p95_latency_ms / 5.0,
            "batched p95 {} vs baseline p95 {}",
            batched.p95_latency_ms,
            base.p95_latency_ms
        );
        assert!(batched.throughput_rps > base.throughput_rps);
    }

    #[test]
    fn at_low_load_batching_costs_little_latency() {
        // 20 rps on a 109-rps server: batches rarely fill; the delay bound
        // caps added latency at ~max_queue_delay.
        let load = LoadSpec {
            rps: 20.0,
            requests: 1000,
        };
        let base = simulate(
            ModelProfile::fp32_server_gpu(),
            ServerConfig::baseline(),
            load,
            3,
        );
        let batched = simulate(
            ModelProfile::fp32_server_gpu(),
            ServerConfig {
                replicas: 1,
                max_batch: 8,
                max_queue_delay_ms: 4.0,
            },
            load,
            3,
        );
        assert!(batched.mean_latency_ms < base.mean_latency_ms + 6.0);
    }

    #[test]
    fn more_replicas_cut_queueing() {
        let load = LoadSpec {
            rps: 180.0,
            requests: 2500,
        };
        let one = simulate(
            ModelProfile::fp32_server_gpu(),
            ServerConfig {
                replicas: 1,
                max_batch: 1,
                max_queue_delay_ms: 0.0,
            },
            load,
            4,
        );
        let two = simulate(
            ModelProfile::fp32_server_gpu(),
            ServerConfig {
                replicas: 2,
                max_batch: 1,
                max_queue_delay_ms: 0.0,
            },
            load,
            4,
        );
        assert!(
            two.p95_latency_ms < one.p95_latency_ms,
            "two replicas p95 {} vs one {}",
            two.p95_latency_ms,
            one.p95_latency_ms
        );
    }

    #[test]
    fn int8_beats_fp32_everywhere() {
        let load = LoadSpec {
            rps: 100.0,
            requests: 1500,
        };
        let cfg = ServerConfig {
            replicas: 1,
            max_batch: 4,
            max_queue_delay_ms: 3.0,
        };
        let fp32 = simulate(ModelProfile::fp32_server_gpu(), cfg, load, 5);
        let int8 = simulate(ModelProfile::int8_server_gpu(), cfg, load, 5);
        assert!(int8.mean_latency_ms < fp32.mean_latency_ms);
        assert!(int8.p99_latency_ms < fp32.p99_latency_ms);
    }

    #[test]
    fn edge_profile_is_orders_slower() {
        let load = LoadSpec {
            rps: 2.0,
            requests: 200,
        };
        let cfg = ServerConfig::baseline();
        let server = simulate(ModelProfile::int8_server_gpu(), cfg, load, 6);
        let edge = simulate(ModelProfile::int8_edge_pi5(), cfg, load, 6);
        assert!(edge.mean_latency_ms > 10.0 * server.mean_latency_ms);
    }

    #[test]
    fn deterministic_by_seed() {
        let load = LoadSpec {
            rps: 80.0,
            requests: 800,
        };
        let cfg = ServerConfig {
            replicas: 2,
            max_batch: 4,
            max_queue_delay_ms: 2.0,
        };
        let a = simulate(ModelProfile::fp32_server_gpu(), cfg, load, 7);
        let b = simulate(ModelProfile::fp32_server_gpu(), cfg, load, 7);
        assert_eq!(a.mean_latency_ms, b.mean_latency_ms);
        assert_eq!(a.batches, b.batches);
        let c = simulate(ModelProfile::fp32_server_gpu(), cfg, load, 8);
        assert_ne!(a.mean_latency_ms, c.mean_latency_ms);
    }

    #[test]
    fn latency_ordering_invariants() {
        let r = simulate(
            ModelProfile::fp32_server_gpu(),
            ServerConfig {
                replicas: 2,
                max_batch: 8,
                max_queue_delay_ms: 5.0,
            },
            LoadSpec {
                rps: 120.0,
                requests: 1000,
            },
            9,
        );
        assert!(r.p50_latency_ms <= r.p95_latency_ms);
        assert!(r.p95_latency_ms <= r.p99_latency_ms);
        assert!(r.mean_latency_ms >= ModelProfile::fp32_server_gpu().batch_ms(1) - 1e-9);
    }
}
