//! A DAG workflow engine — the Argo Workflows substrate of Unit 3.
//!
//! The lab builds "a simplified ML pipeline using Argo Workflows …
//! including model registration and promotion" (§3.3). This engine runs a
//! directed acyclic graph of named tasks with dependencies, executing each
//! **wave** of ready tasks in parallel on real threads, with per-task
//! retry budgets. A task whose dependency failed is skipped, and the
//! result records every task's status, attempt count, and execution wave.
//!
//! Tasks communicate through a shared key-value context (`Arc<RwLock<…>>`),
//! the way Argo tasks pass parameters/artifacts.

use opml_simkernel::SimTime;
use opml_telemetry::Telemetry;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Shared blackboard for inter-task values.
#[derive(Debug, Clone, Default)]
pub struct Context {
    values: Arc<RwLock<HashMap<String, String>>>,
}

impl Context {
    /// Empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store a value.
    pub fn set(&self, key: &str, value: impl Into<String>) {
        self.values.write().insert(key.to_string(), value.into());
    }

    /// Fetch a value.
    pub fn get(&self, key: &str) -> Option<String> {
        self.values.read().get(key).cloned()
    }

    /// Fetch and parse a value.
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        self.get(key)?.parse().ok()
    }
}

/// What a task does: runs against the context, fails with a message.
pub type TaskFn = Box<dyn Fn(&Context) -> Result<(), String> + Send + Sync>;

struct Task {
    name: String,
    deps: Vec<usize>,
    retries: u32,
    run: TaskFn,
}

/// Terminal status of one task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskStatus {
    /// Ran to success (possibly after retries).
    Succeeded,
    /// Exhausted its retry budget; last error attached.
    Failed(String),
    /// Not run because a dependency failed or was skipped.
    Skipped,
}

/// Per-task record in the workflow result.
#[derive(Debug, Clone)]
pub struct TaskResult {
    /// Task name.
    pub name: String,
    /// Final status.
    pub status: TaskStatus,
    /// Attempts actually made (0 for skipped tasks).
    pub attempts: u32,
    /// Parallel wave index the task ran in (`None` for skipped).
    pub wave: Option<usize>,
}

/// Result of one workflow execution.
#[derive(Debug, Clone)]
pub struct WorkflowResult {
    /// Per-task results, in definition order.
    pub tasks: Vec<TaskResult>,
    /// Number of parallel waves executed.
    pub waves: usize,
}

impl WorkflowResult {
    /// Whether every task succeeded.
    pub fn succeeded(&self) -> bool {
        self.tasks.iter().all(|t| t.status == TaskStatus::Succeeded)
    }

    /// Find a task's result by name.
    pub fn task(&self, name: &str) -> Option<&TaskResult> {
        self.tasks.iter().find(|t| t.name == name)
    }
}

/// Errors detected when building/validating a workflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkflowError {
    /// Two tasks share a name.
    DuplicateTask(String),
    /// A dependency references an unknown task.
    UnknownDependency {
        /// Task declaring the dependency.
        task: String,
        /// The missing dependency name.
        dep: String,
    },
    /// The graph has a cycle.
    Cycle,
}

impl fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkflowError::DuplicateTask(n) => write!(f, "duplicate task name: {n}"),
            WorkflowError::UnknownDependency { task, dep } => {
                write!(f, "task {task} depends on unknown task {dep}")
            }
            WorkflowError::Cycle => write!(f, "workflow graph has a cycle"),
        }
    }
}

impl std::error::Error for WorkflowError {}

/// Builder/executor for a DAG of tasks.
#[derive(Default)]
pub struct Workflow {
    tasks: Vec<Task>,
}

impl fmt::Debug for Workflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Workflow")
            .field(
                "tasks",
                &self.tasks.iter().map(|t| &t.name).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Workflow {
    /// Empty workflow.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a task with named dependencies and a retry budget
    /// (`retries = 0` means a single attempt).
    pub fn add_task(
        &mut self,
        name: &str,
        deps: &[&str],
        retries: u32,
        run: impl Fn(&Context) -> Result<(), String> + Send + Sync + 'static,
    ) -> Result<(), WorkflowError> {
        if self.tasks.iter().any(|t| t.name == name) {
            return Err(WorkflowError::DuplicateTask(name.to_string()));
        }
        let mut dep_idx = Vec::with_capacity(deps.len());
        for d in deps {
            let idx = self
                .tasks
                .iter()
                .position(|t| t.name == *d)
                .ok_or_else(|| WorkflowError::UnknownDependency {
                    task: name.to_string(),
                    dep: d.to_string(),
                })?;
            dep_idx.push(idx);
        }
        self.tasks.push(Task {
            name: name.to_string(),
            deps: dep_idx,
            retries,
            run: Box::new(run),
        });
        Ok(())
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True iff no tasks are defined.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Execute the DAG against a context.
    ///
    /// Because `add_task` only accepts dependencies on *already-added*
    /// tasks, the graph is acyclic by construction; waves are computed by
    /// repeated readiness sweeps.
    pub fn run(&self, ctx: &Context) -> WorkflowResult {
        self.run_traced(ctx, SimTime::ZERO, &Telemetry::disabled())
    }

    /// Execute the DAG like [`Workflow::run`], emitting one
    /// `workflow.wave` span per parallel wave and one `workflow.task`
    /// instant per executed task.
    ///
    /// The engine has no clock of its own, so every event is stamped with
    /// the caller's simulated time `at`. Task events are emitted *after*
    /// the wave's threads have joined, in ready-index (definition) order —
    /// thread completion order never leaks into the trace.
    pub fn run_traced(&self, ctx: &Context, at: SimTime, telemetry: &Telemetry) -> WorkflowResult {
        let n = self.tasks.len();
        let mut status: Vec<Option<TaskStatus>> = vec![None; n];
        let mut attempts = vec![0u32; n];
        let mut wave_of: Vec<Option<usize>> = vec![None; n];
        let mut wave = 0usize;

        loop {
            // Mark skips: any unresolved task with a failed/skipped dep.
            let mut changed = true;
            while changed {
                changed = false;
                for i in 0..n {
                    if status[i].is_some() {
                        continue;
                    }
                    let dead = self.tasks[i].deps.iter().any(|&d| {
                        matches!(
                            status[d],
                            Some(TaskStatus::Failed(_)) | Some(TaskStatus::Skipped)
                        )
                    });
                    if dead {
                        status[i] = Some(TaskStatus::Skipped);
                        changed = true;
                    }
                }
            }
            // Ready set: unresolved tasks whose deps all succeeded.
            let ready: Vec<usize> = (0..n)
                .filter(|&i| status[i].is_none())
                .filter(|&i| {
                    self.tasks[i]
                        .deps
                        .iter()
                        .all(|&d| status[d] == Some(TaskStatus::Succeeded))
                })
                .collect();
            if ready.is_empty() {
                break;
            }
            // Execute the wave in parallel; retries happen inside the task
            // thread.
            let results: Vec<(TaskStatus, u32)> = std::thread::scope(|s| {
                let handles: Vec<_> = ready
                    .iter()
                    .map(|&i| {
                        let task = &self.tasks[i];
                        s.spawn(move || {
                            let budget = task.retries + 1;
                            let mut last_err = String::new();
                            for attempt in 1..=budget {
                                match (task.run)(ctx) {
                                    Ok(()) => return (TaskStatus::Succeeded, attempt),
                                    Err(e) => last_err = e,
                                }
                            }
                            (TaskStatus::Failed(last_err), budget)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("task panicked"))
                    .collect()
            });
            let ready_count = ready.len();
            let span = telemetry.span(at, "workflow.wave", || {
                vec![("wave", wave.into()), ("tasks", ready_count.into())]
            });
            for (&i, (st, att)) in ready.iter().zip(results) {
                telemetry.instant(at, "workflow.task", || {
                    vec![
                        ("name", self.tasks[i].name.clone().into()),
                        ("wave", wave.into()),
                        ("attempts", att.into()),
                        (
                            "status",
                            match &st {
                                TaskStatus::Succeeded => "succeeded".into(),
                                TaskStatus::Failed(_) => "failed".into(),
                                TaskStatus::Skipped => "skipped".into(),
                            },
                        ),
                    ]
                });
                telemetry.counter_add(
                    match &st {
                        TaskStatus::Succeeded => "workflow.tasks_succeeded",
                        TaskStatus::Failed(_) => "workflow.tasks_failed",
                        TaskStatus::Skipped => "workflow.tasks_skipped",
                    },
                    1,
                );
                if att > 1 {
                    telemetry.counter_add("workflow.task_retries", u64::from(att) - 1);
                }
                status[i] = Some(st);
                attempts[i] = att;
                wave_of[i] = Some(wave);
            }
            span.end(at);
            wave += 1;
        }

        WorkflowResult {
            tasks: self
                .tasks
                .iter()
                .enumerate()
                .map(|(i, t)| TaskResult {
                    name: t.name.clone(),
                    status: status[i].clone().unwrap_or(TaskStatus::Skipped),
                    attempts: attempts[i],
                    wave: wave_of[i],
                })
                .collect(),
            waves: wave,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn linear_pipeline_runs_in_order() {
        let mut wf = Workflow::new();
        wf.add_task("extract", &[], 0, |ctx| {
            ctx.set("rows", "100");
            Ok(())
        })
        .unwrap();
        wf.add_task("train", &["extract"], 0, |ctx| {
            let rows: u32 = ctx.get("rows").ok_or("missing rows")?.parse().unwrap();
            ctx.set("acc", format!("{}", 0.5 + rows as f64 / 1000.0));
            Ok(())
        })
        .unwrap();
        wf.add_task("register", &["train"], 0, |ctx| {
            if ctx.get_f64("acc").unwrap_or(0.0) > 0.55 {
                Ok(())
            } else {
                Err("accuracy gate".into())
            }
        })
        .unwrap();
        let ctx = Context::new();
        let result = wf.run(&ctx);
        assert!(result.succeeded());
        assert_eq!(result.waves, 3);
        assert_eq!(result.task("extract").unwrap().wave, Some(0));
        assert_eq!(result.task("register").unwrap().wave, Some(2));
    }

    #[test]
    fn independent_tasks_share_a_wave() {
        let mut wf = Workflow::new();
        for name in ["a", "b", "c"] {
            wf.add_task(name, &[], 0, |_| Ok(())).unwrap();
        }
        wf.add_task("join", &["a", "b", "c"], 0, |_| Ok(()))
            .unwrap();
        let result = wf.run(&Context::new());
        assert_eq!(result.waves, 2);
        for name in ["a", "b", "c"] {
            assert_eq!(result.task(name).unwrap().wave, Some(0));
        }
        assert_eq!(result.task("join").unwrap().wave, Some(1));
    }

    #[test]
    fn failure_skips_dependents_only() {
        let mut wf = Workflow::new();
        wf.add_task("ok", &[], 0, |_| Ok(())).unwrap();
        wf.add_task("boom", &[], 0, |_| Err("kaput".into()))
            .unwrap();
        wf.add_task("after_boom", &["boom"], 0, |_| Ok(())).unwrap();
        wf.add_task("after_ok", &["ok"], 0, |_| Ok(())).unwrap();
        let result = wf.run(&Context::new());
        assert!(!result.succeeded());
        assert_eq!(
            result.task("boom").unwrap().status,
            TaskStatus::Failed("kaput".into())
        );
        assert_eq!(
            result.task("after_boom").unwrap().status,
            TaskStatus::Skipped
        );
        assert_eq!(
            result.task("after_ok").unwrap().status,
            TaskStatus::Succeeded
        );
        assert_eq!(result.task("after_boom").unwrap().attempts, 0);
    }

    #[test]
    fn retries_until_budget() {
        static CALLS: AtomicU32 = AtomicU32::new(0);
        let mut wf = Workflow::new();
        wf.add_task("flaky", &[], 3, |_| {
            // Succeeds on the third attempt.
            if CALLS.fetch_add(1, Ordering::SeqCst) < 2 {
                Err("transient".into())
            } else {
                Ok(())
            }
        })
        .unwrap();
        let result = wf.run(&Context::new());
        assert!(result.succeeded());
        assert_eq!(result.task("flaky").unwrap().attempts, 3);
    }

    #[test]
    fn retry_budget_exhausted() {
        let mut wf = Workflow::new();
        wf.add_task("hopeless", &[], 2, |_| Err("always".into()))
            .unwrap();
        let result = wf.run(&Context::new());
        assert_eq!(result.task("hopeless").unwrap().attempts, 3);
        assert!(matches!(
            result.task("hopeless").unwrap().status,
            TaskStatus::Failed(_)
        ));
    }

    #[test]
    fn build_validation() {
        let mut wf = Workflow::new();
        wf.add_task("a", &[], 0, |_| Ok(())).unwrap();
        assert_eq!(
            wf.add_task("a", &[], 0, |_| Ok(())).unwrap_err(),
            WorkflowError::DuplicateTask("a".into())
        );
        assert_eq!(
            wf.add_task("b", &["ghost"], 0, |_| Ok(())).unwrap_err(),
            WorkflowError::UnknownDependency {
                task: "b".into(),
                dep: "ghost".into()
            }
        );
    }

    #[test]
    fn context_is_shared_across_waves() {
        let mut wf = Workflow::new();
        for i in 0..4 {
            let key = format!("v{i}");
            wf.add_task(&key.clone(), &[], 0, move |ctx| {
                ctx.set(&key, "1");
                Ok(())
            })
            .unwrap();
        }
        wf.add_task("sum", &["v0", "v1", "v2", "v3"], 0, |ctx| {
            let total: u32 = (0..4)
                .map(|i| ctx.get(&format!("v{i}")).unwrap().parse::<u32>().unwrap())
                .sum();
            ctx.set("total", total.to_string());
            Ok(())
        })
        .unwrap();
        let ctx = Context::new();
        assert!(wf.run(&ctx).succeeded());
        assert_eq!(ctx.get("total").unwrap(), "4");
    }

    #[test]
    fn traced_run_emits_waves_and_tasks_in_definition_order() {
        use opml_telemetry::MemorySink;
        let mut wf = Workflow::new();
        for name in ["a", "b", "c"] {
            wf.add_task(name, &[], 0, |_| Ok(())).unwrap();
        }
        wf.add_task("join", &["a", "b", "c"], 0, |_| Ok(()))
            .unwrap();
        let sink = MemorySink::new();
        let telemetry = Telemetry::with_sink(sink.clone());
        let result = wf.run_traced(&Context::new(), SimTime(300), &telemetry);
        assert!(result.succeeded());
        // Task events come out in definition order within each wave, never
        // in thread completion order.
        let task_names: Vec<String> = sink
            .events()
            .iter()
            .filter(|e| e.name == "workflow.task")
            .map(|e| {
                e.attr("name")
                    .and_then(opml_telemetry::AttrValue::as_str)
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(task_names, vec!["a", "b", "c", "join"]);
        let waves = sink
            .events()
            .iter()
            .filter(|e| e.name == "workflow.wave" && e.phase == opml_telemetry::EventPhase::Begin)
            .count();
        assert_eq!(waves, 2);
        assert_eq!(
            telemetry.metrics_snapshot().counters["workflow.tasks_succeeded"],
            4
        );
    }

    #[test]
    fn empty_workflow() {
        let wf = Workflow::new();
        let result = wf.run(&Context::new());
        assert!(result.succeeded());
        assert_eq!(result.waves, 0);
        assert!(wf.is_empty());
    }
}
