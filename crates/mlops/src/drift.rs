//! Data-drift detection — the Unit 7 lab's "drift detection" step and the
//! lecture's core warning: "the difficulty of detecting performance
//! degradation due to data drift when ground truth labels are not readily
//! available" (§3.7).
//!
//! The detector watches a *label-free* signal (feature values or model
//! confidence) in a sliding window and compares it against a frozen
//! reference window using the two-sample Kolmogorov–Smirnov test and the
//! Population Stability Index from `opml-simkernel::stats`.

use opml_simkernel::stats::{ks_critical, ks_statistic, psi};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Drift verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DriftStatus {
    /// Distribution consistent with the reference.
    Stable,
    /// PSI in the conventional warning band (0.1–0.25).
    Warning,
    /// KS significant at α and/or PSI > 0.25.
    Drift,
}

/// One evaluation of the current window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriftReport {
    /// Verdict.
    pub status: DriftStatus,
    /// KS statistic against the reference.
    pub ks: f64,
    /// KS critical value at the configured α.
    pub ks_critical: f64,
    /// PSI against the reference.
    pub psi: f64,
    /// Window size evaluated.
    pub n: usize,
}

/// Sliding-window drift detector over a scalar signal.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriftDetector {
    reference: Vec<f64>,
    window: VecDeque<f64>,
    window_size: usize,
    alpha: f64,
    bins: usize,
}

impl DriftDetector {
    /// Build from a non-empty reference sample.
    ///
    /// `window_size` observations are held in the sliding window; reports
    /// are produced once the window is full. `alpha` is the KS test
    /// significance level (0.01 is a sane default for per-window checks).
    pub fn new(reference: Vec<f64>, window_size: usize, alpha: f64) -> Self {
        assert!(!reference.is_empty(), "reference must be non-empty");
        assert!(window_size >= 10, "window too small to test");
        assert!((0.0..1.0).contains(&alpha) && alpha > 0.0);
        DriftDetector {
            reference,
            window: VecDeque::new(),
            window_size,
            alpha,
            bins: 10,
        }
    }

    /// Feed one observation; returns a report once the window is full
    /// (and on every observation thereafter).
    pub fn push(&mut self, x: f64) -> Option<DriftReport> {
        if self.window.len() == self.window_size {
            self.window.pop_front();
        }
        self.window.push_back(x);
        if self.window.len() < self.window_size {
            return None;
        }
        Some(self.evaluate())
    }

    /// Evaluate the current (full or partial) window.
    pub fn evaluate(&self) -> DriftReport {
        let current: Vec<f64> = self.window.iter().copied().collect();
        let ks = ks_statistic(&self.reference, &current);
        let crit = ks_critical(self.reference.len(), current.len(), self.alpha);
        let p = psi(&self.reference, &current, self.bins);
        let status = if ks > crit || p > 0.25 {
            DriftStatus::Drift
        } else if p > 0.1 {
            DriftStatus::Warning
        } else {
            DriftStatus::Stable
        };
        DriftReport {
            status,
            ks,
            ks_critical: crit,
            psi: p,
            n: current.len(),
        }
    }

    /// Number of observations currently windowed.
    pub fn fill(&self) -> usize {
        self.window.len()
    }
}

/// Chi-squared statistic for label/prediction-distribution shift between
/// two count vectors (e.g. predicted-class histograms week over week).
pub fn label_shift_chi2(reference: &[u64], current: &[u64]) -> f64 {
    assert_eq!(
        reference.len(),
        current.len(),
        "class-count length mismatch"
    );
    let rn: u64 = reference.iter().sum();
    let cn: u64 = current.iter().sum();
    assert!(rn > 0 && cn > 0, "empty count vectors");
    let mut chi2 = 0.0;
    for (&r, &c) in reference.iter().zip(current) {
        let expected = (r as f64 / rn as f64) * cn as f64;
        if expected > 0.0 {
            let d = c as f64 - expected;
            chi2 += d * d / expected;
        } else if c > 0 {
            // A class never seen in reference appearing now is maximal
            // evidence; give it a large finite contribution.
            chi2 += c as f64 * 10.0;
        }
    }
    chi2
}

#[cfg(test)]
mod tests {
    use super::*;
    use opml_simkernel::Rng;

    fn normal_sample(n: usize, shift: f64, seed: u64) -> Vec<f64> {
        let mut rng = Rng::new(seed);
        (0..n).map(|_| rng.normal() + shift).collect()
    }

    #[test]
    fn stable_stream_stays_stable() {
        let mut det = DriftDetector::new(normal_sample(2000, 0.0, 1), 500, 0.01);
        let stream = normal_sample(1000, 0.0, 2);
        let mut last = None;
        for x in stream {
            if let Some(r) = det.push(x) {
                last = Some(r);
            }
        }
        let r = last.expect("window filled");
        assert_eq!(r.status, DriftStatus::Stable, "ks={} psi={}", r.ks, r.psi);
    }

    #[test]
    fn shifted_stream_detected() {
        let mut det = DriftDetector::new(normal_sample(2000, 0.0, 3), 500, 0.01);
        let mut detected_at = None;
        // 500 in-distribution, then shifted by 1.5σ.
        for (i, x) in normal_sample(500, 0.0, 4).into_iter().enumerate() {
            if let Some(r) = det.push(x) {
                assert_ne!(r.status, DriftStatus::Drift, "false alarm at {i}");
            }
        }
        for (i, x) in normal_sample(1500, 1.5, 5).into_iter().enumerate() {
            if let Some(r) = det.push(x) {
                if r.status == DriftStatus::Drift {
                    detected_at = Some(i);
                    break;
                }
            }
        }
        let at = detected_at.expect("drift never detected");
        assert!(
            at < 600,
            "detection too slow: {at} observations after onset"
        );
    }

    #[test]
    fn report_not_emitted_until_window_full() {
        let mut det = DriftDetector::new(normal_sample(100, 0.0, 6), 50, 0.05);
        for (i, x) in normal_sample(49, 0.0, 7).into_iter().enumerate() {
            assert!(det.push(x).is_none(), "report before full window at {i}");
        }
        assert_eq!(det.fill(), 49);
        assert!(det.push(0.0).is_some());
    }

    #[test]
    fn warning_band_between_stable_and_drift() {
        // A small shift lands in Warning (PSI 0.1–0.25) for this window.
        let reference = normal_sample(5000, 0.0, 8);
        let mut det = DriftDetector::new(reference, 1000, 1e-6); // KS ~ off
        for x in normal_sample(1000, 0.35, 9) {
            det.push(x);
        }
        let r = det.evaluate();
        assert!(
            r.status == DriftStatus::Warning || r.status == DriftStatus::Drift,
            "psi={} status={:?}",
            r.psi,
            r.status
        );
        assert!(r.psi > 0.1);
    }

    #[test]
    fn label_shift_chi2_behaviour() {
        let reference = [100u64, 100, 100, 100];
        // Identical distribution → 0.
        assert!(label_shift_chi2(&reference, &[50, 50, 50, 50]) < 1e-9);
        // Mild shift → small; collapse onto one class → large.
        let mild = label_shift_chi2(&reference, &[60, 50, 45, 45]);
        let collapse = label_shift_chi2(&reference, &[200, 0, 0, 0]);
        assert!(mild < 10.0, "mild {mild}");
        assert!(collapse > 100.0, "collapse {collapse}");
        assert!(collapse > mild);
    }

    #[test]
    fn unseen_class_is_flagged() {
        let chi2 = label_shift_chi2(&[100, 0], &[50, 50]);
        assert!(chi2 > 100.0);
    }
}
