//! Commit-triggered CI/CD for the ML system — the automation that Unit 3
//! teaches and the "continuous X" pipeline the final project's CI/CD role
//! owns (§3.11): on every commit, run the test gate, retrain, evaluate
//! against the evaluation gate, register, deploy through
//! staging → canary → production, and **auto-roll back** on canary
//! regression.
//!
//! The pipeline composes the other substrates for real: training uses
//! [`crate::model`], runs are logged to a [`crate::tracking`] tracker,
//! versions live in a [`crate::registry`], stages execute on the
//! [`crate::pipeline`] DAG engine, and the canary judgement reuses
//! [`crate::eval::canary_analysis`].

use crate::eval::{canary_analysis, CanaryPolicy, CanaryVerdict};
use crate::model::{train_epoch, Dataset, Mlp, Sgd};
use crate::registry::{ModelRegistry, Stage};
use crate::tracking::{params_to_artifact, ExperimentTracker, RunStatus};
use opml_simkernel::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A code/data change entering the pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Commit {
    /// Commit id.
    pub id: u64,
    /// Human message.
    pub message: String,
    /// Whether unit tests pass (a broken build).
    pub tests_pass: bool,
    /// Fraction of training labels this change corrupts (0 for healthy
    /// changes; > 0 models a bad data/feature change that the evaluation
    /// gate or canary must catch).
    pub label_corruption: f64,
    /// Relative serving-latency regression introduced (0 for none).
    pub latency_regression: f64,
}

impl Commit {
    /// A healthy change.
    pub fn healthy(id: u64, message: &str) -> Self {
        Commit {
            id,
            message: message.into(),
            tests_pass: true,
            label_corruption: 0.0,
            latency_regression: 0.0,
        }
    }
}

/// Where a commit's journey ended.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DeployOutcome {
    /// Failed the unit-test gate; nothing trained.
    CiFailed,
    /// Trained but failed the offline evaluation gate; not deployed.
    GateFailed {
        /// Measured accuracy.
        accuracy: f64,
        /// Gate threshold.
        required: f64,
    },
    /// Reached canary but regressed; previous production restored.
    RolledBack {
        /// Canary verdict inputs, for the postmortem.
        reason: String,
    },
    /// Promoted to production.
    Promoted {
        /// The registry version now in production.
        version: u32,
        /// Offline accuracy at the gate.
        accuracy: f64,
    },
}

/// Pipeline configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CicdConfig {
    /// Minimum offline accuracy to pass the evaluation gate.
    pub gate_accuracy: f64,
    /// Canary judgement policy.
    pub canary: CanaryPolicy,
    /// Training epochs per commit.
    pub epochs: usize,
    /// Model architecture.
    pub sizes: Vec<usize>,
    /// Base seed.
    pub seed: u64,
}

impl Default for CicdConfig {
    fn default() -> Self {
        CicdConfig {
            gate_accuracy: 0.85,
            canary: CanaryPolicy {
                max_latency_regression: 0.25,
                max_accuracy_drop: 0.05,
                min_samples: 20,
            },
            epochs: 20,
            sizes: vec![8, 32, 11],
            seed: 99,
        }
    }
}

/// The CI/CD system: owns the tracker and registry across commits.
#[derive(Debug)]
pub struct CicdSystem {
    /// Experiment tracker (one run per commit).
    pub tracker: ExperimentTracker,
    /// Model registry.
    pub registry: ModelRegistry,
    /// Configuration.
    pub config: CicdConfig,
    /// Model name in the registry.
    pub model_name: String,
}

impl CicdSystem {
    /// New system for a model name.
    pub fn new(model_name: &str, config: CicdConfig) -> Self {
        CicdSystem {
            tracker: ExperimentTracker::new(),
            registry: ModelRegistry::new(),
            config,
            model_name: model_name.to_string(),
        }
    }

    /// Run one commit through the full pipeline.
    ///
    /// `train_data`/`holdout` are the current datasets; the commit's
    /// corruption is applied to its own training labels only (the change
    /// is what broke it).
    pub fn run_commit(
        &mut self,
        commit: &Commit,
        train_data: &Dataset,
        holdout: &Dataset,
    ) -> DeployOutcome {
        // --- CI: unit tests -------------------------------------------
        if !commit.tests_pass {
            return DeployOutcome::CiFailed;
        }
        // --- Train (tracked) ------------------------------------------
        let run = self.tracker.start_run(&self.model_name);
        self.tracker
            .log_param(run, "commit", &commit.id.to_string());
        self.tracker
            .log_param(run, "epochs", &self.config.epochs.to_string());
        let mut rng = Rng::new(self.config.seed ^ commit.id);
        let mut data = train_data.clone();
        if commit.label_corruption > 0.0 {
            let n = (data.len() as f64 * commit.label_corruption) as usize;
            for i in 0..n {
                data.y[i] = (data.y[i] + 1) % data.classes;
            }
        }
        let mut model = Mlp::new(&self.config.sizes, &mut rng);
        let mut opt = Sgd::new(0.1, 0.9);
        for epoch in 0..self.config.epochs {
            let (loss, acc) = train_epoch(&mut model, &data, &mut opt, 32, &mut rng);
            self.tracker
                .log_metric(run, "loss", epoch as u64, loss as f64);
            self.tracker.log_metric(run, "train_acc", epoch as u64, acc);
        }
        // --- Offline evaluation gate ----------------------------------
        let accuracy = holdout.accuracy(&mut model);
        self.tracker
            .log_metric(run, "holdout_acc", self.config.epochs as u64, accuracy);
        if accuracy < self.config.gate_accuracy {
            self.tracker.end_run(run, RunStatus::Failed);
            return DeployOutcome::GateFailed {
                accuracy,
                required: self.config.gate_accuracy,
            };
        }
        self.tracker
            .log_artifact(run, "model.bin", params_to_artifact(&model.params_flat()));
        self.tracker.end_run(run, RunStatus::Finished);
        // --- Register + staging ---------------------------------------
        let mut metrics = BTreeMap::new();
        metrics.insert("holdout_acc".to_string(), accuracy);
        let version = self.registry.register(
            &self.model_name,
            params_to_artifact(&model.params_flat()),
            metrics,
        );
        self.registry
            .transition(&self.model_name, version, Stage::Staging)
            .expect("fresh version must stage");
        // --- Canary ----------------------------------------------------
        self.registry
            .transition(&self.model_name, version, Stage::Canary)
            .expect("staged version must canary");
        let prod_acc = self
            .registry
            .in_stage(&self.model_name, Stage::Production)
            .and_then(|v| v.metrics.get("holdout_acc").copied())
            .unwrap_or(0.0);
        // Operational canary signals: latency windows (production baseline
        // 100 ms; the commit's regression applies to the canary).
        let mut sim_rng = Rng::new(self.config.seed ^ commit.id ^ 0xCAFE);
        let prod_lat: Vec<f64> = (0..50)
            .map(|_| 100.0 + sim_rng.normal_with(0.0, 3.0))
            .collect();
        let canary_lat: Vec<f64> = (0..50)
            .map(|_| 100.0 * (1.0 + commit.latency_regression) + sim_rng.normal_with(0.0, 3.0))
            .collect();
        let verdict = canary_analysis(
            &self.config.canary,
            &prod_lat,
            prod_acc,
            &canary_lat,
            accuracy,
        );
        match verdict {
            CanaryVerdict::Rollback => {
                // Archive the canary; production (if any) is untouched.
                self.registry
                    .transition(&self.model_name, version, Stage::Archived)
                    .expect("canary must archive");
                DeployOutcome::RolledBack {
                    reason: format!(
                        "canary regression: acc {accuracy:.3} vs prod {prod_acc:.3}, \
                         latency +{:.0}%",
                        commit.latency_regression * 100.0
                    ),
                }
            }
            CanaryVerdict::Promote | CanaryVerdict::Continue => {
                self.registry
                    .transition(&self.model_name, version, Stage::Production)
                    .expect("canary must promote");
                DeployOutcome::Promoted { version, accuracy }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn datasets() -> (Dataset, Dataset) {
        Dataset::blobs(550, 8, 11, 0.6, 90).split(0.8, 91)
    }

    #[test]
    fn healthy_commit_reaches_production() {
        let (train, holdout) = datasets();
        let mut sys = CicdSystem::new("gourmetgram", CicdConfig::default());
        let outcome = sys.run_commit(&Commit::healthy(1, "initial model"), &train, &holdout);
        match outcome {
            DeployOutcome::Promoted { version, accuracy } => {
                assert_eq!(version, 1);
                assert!(accuracy > 0.85);
            }
            other => panic!("expected promotion, got {other:?}"),
        }
        assert_eq!(
            sys.registry
                .in_stage("gourmetgram", Stage::Production)
                .unwrap()
                .version,
            1
        );
        // The tracked run exists with artifacts.
        let runs = sys.tracker.runs_in("gourmetgram");
        assert_eq!(runs.len(), 1);
        assert!(runs[0].artifact("model.bin").is_some());
    }

    #[test]
    fn broken_build_never_trains() {
        let (train, holdout) = datasets();
        let mut sys = CicdSystem::new("m", CicdConfig::default());
        let mut commit = Commit::healthy(2, "oops");
        commit.tests_pass = false;
        assert_eq!(
            sys.run_commit(&commit, &train, &holdout),
            DeployOutcome::CiFailed
        );
        assert_eq!(sys.tracker.run_count(), 0);
        assert!(sys.registry.latest_version("m").is_none());
    }

    #[test]
    fn corrupted_labels_fail_the_gate() {
        let (train, holdout) = datasets();
        let mut sys = CicdSystem::new("m", CicdConfig::default());
        let mut commit = Commit::healthy(3, "bad feature join");
        commit.label_corruption = 0.6;
        match sys.run_commit(&commit, &train, &holdout) {
            DeployOutcome::GateFailed { accuracy, required } => {
                assert!(accuracy < required);
            }
            other => panic!("expected gate failure, got {other:?}"),
        }
        // Failed run recorded as Failed in the tracker; nothing registered.
        assert_eq!(sys.tracker.runs_in("m").len(), 1);
        assert!(sys.registry.latest_version("m").is_none());
    }

    #[test]
    fn latency_regression_rolls_back_and_keeps_old_production() {
        let (train, holdout) = datasets();
        let mut sys = CicdSystem::new("m", CicdConfig::default());
        assert!(matches!(
            sys.run_commit(&Commit::healthy(1, "v1"), &train, &holdout),
            DeployOutcome::Promoted { .. }
        ));
        let mut slow = Commit::healthy(2, "accidentally sync I/O");
        slow.latency_regression = 0.5;
        match sys.run_commit(&slow, &train, &holdout) {
            DeployOutcome::RolledBack { reason } => {
                assert!(reason.contains("latency"));
            }
            other => panic!("expected rollback, got {other:?}"),
        }
        // v1 still serves production; v2 archived.
        assert_eq!(
            sys.registry
                .in_stage("m", Stage::Production)
                .unwrap()
                .version,
            1
        );
        assert_eq!(sys.registry.get("m", 2).unwrap().stage, Stage::Archived);
    }

    #[test]
    fn successive_healthy_commits_replace_production() {
        let (train, holdout) = datasets();
        let mut sys = CicdSystem::new("m", CicdConfig::default());
        for id in 1..=3 {
            assert!(matches!(
                sys.run_commit(&Commit::healthy(id, "retrain"), &train, &holdout),
                DeployOutcome::Promoted { .. }
            ));
        }
        assert_eq!(
            sys.registry
                .in_stage("m", Stage::Production)
                .unwrap()
                .version,
            3
        );
        assert_eq!(sys.registry.versions("m").len(), 3);
        // History shows the archival chain.
        assert!(sys.registry.history().len() >= 9);
    }

    #[test]
    fn mild_corruption_passes_gate_but_canary_catches_accuracy_drop() {
        let (train, holdout) = datasets();
        let mut config = CicdConfig {
            gate_accuracy: 0.60, // lax gate: the canary is the net
            ..CicdConfig::default()
        };
        config.canary.max_accuracy_drop = 0.03;
        let mut sys = CicdSystem::new("m", config);
        assert!(matches!(
            sys.run_commit(&Commit::healthy(1, "v1"), &train, &holdout),
            DeployOutcome::Promoted { .. }
        ));
        let mut meh = Commit::healthy(2, "subtly bad");
        meh.label_corruption = 0.25;
        match sys.run_commit(&meh, &train, &holdout) {
            DeployOutcome::RolledBack { .. } => {}
            DeployOutcome::GateFailed { .. } => {} // also acceptable safety net
            other => panic!("bad model deployed: {other:?}"),
        }
        assert_eq!(
            sys.registry
                .in_stage("m", Stage::Production)
                .unwrap()
                .version,
            1
        );
    }
}
