//! Property-based tests for the ML substrate's core invariants.

use opml_mlops::allreduce::{all_reduce, chunk_bounds, sequential_sum, ReduceAlgo};
use opml_mlops::model::{softmax_cross_entropy, Dataset, Mlp};
use opml_mlops::optimize::QuantizedMatrix;
use opml_mlops::precision::bf16_round;
use opml_mlops::tensor::Matrix;
use opml_simkernel::Rng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// chunk_bounds partitions [0, len) exactly: contiguous, complete,
    /// and balanced within one element.
    #[test]
    fn chunk_bounds_partitions(len in 0usize..10_000, n in 1usize..64) {
        let bounds = chunk_bounds(len, n);
        prop_assert_eq!(bounds.len(), n);
        prop_assert_eq!(bounds[0].0, 0);
        prop_assert_eq!(bounds[n - 1].1, len);
        for w in bounds.windows(2) {
            prop_assert_eq!(w[0].1, w[1].0);
        }
        let sizes: Vec<usize> = bounds.iter().map(|&(a, b)| b - a).collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        prop_assert!(max - min <= 1, "unbalanced: {sizes:?}");
    }

    /// Every collective computes the element-wise sum, for arbitrary
    /// worker counts and lengths (including len < workers).
    #[test]
    fn all_reduce_equals_sequential(
        n in 1usize..7,
        len in 0usize..200,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng::new(seed);
        let original: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..len).map(|_| rng.range_f64(-10.0, 10.0) as f32).collect())
            .collect();
        let expected = sequential_sum(&original);
        for algo in ReduceAlgo::ALL {
            let mut bufs = original.clone();
            all_reduce(&mut bufs, algo);
            for (w, b) in bufs.iter().enumerate() {
                for (j, (&got, &want)) in b.iter().zip(&expected).enumerate() {
                    prop_assert!(
                        (got - want).abs() <= 1e-3 * (1.0 + want.abs()),
                        "{} worker {w} elem {j}: {got} vs {want}",
                        algo.name()
                    );
                }
            }
        }
    }

    /// Transpose is an involution and matmul respects transposition
    /// shapes.
    #[test]
    fn transpose_involution(rows in 1usize..20, cols in 1usize..20, seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let m = Matrix::from_fn(rows, cols, |_, _| rng.range_f64(-1.0, 1.0) as f32);
        prop_assert_eq!(m.transpose().transpose(), m.clone());
        let t = m.transpose();
        let sq = m.matmul(&t);
        prop_assert_eq!(sq.rows(), rows);
        prop_assert_eq!(sq.cols(), rows);
        // Diagonal of M·Mᵀ is a sum of squares — non-negative.
        for i in 0..rows {
            prop_assert!(sq.get(i, i) >= -1e-5);
        }
    }

    /// Softmax cross-entropy gradient rows sum to ~0 (probabilities sum
    /// to one), and the loss is non-negative.
    #[test]
    fn softmax_gradient_rows_sum_zero(
        batch in 1usize..16,
        classes in 2usize..8,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng::new(seed);
        let logits = Matrix::from_fn(batch, classes, |_, _| rng.range_f64(-5.0, 5.0) as f32);
        let labels: Vec<usize> = (0..batch).map(|_| rng.below(classes as u64) as usize).collect();
        let (loss, d) = softmax_cross_entropy(&logits, &labels);
        prop_assert!(loss >= 0.0);
        for r in 0..batch {
            let s: f32 = d.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-5, "row {r} gradient sum {s}");
        }
    }

    /// Parameter flatten/unflatten is lossless for arbitrary layer shapes.
    #[test]
    fn params_roundtrip_any_shape(
        sizes in prop::collection::vec(1usize..12, 2..5),
        seed in any::<u64>(),
    ) {
        let mut rng = Rng::new(seed);
        let mut model = Mlp::new(&sizes, &mut rng);
        let flat = model.params_flat();
        prop_assert_eq!(flat.len(), model.num_params());
        model.set_params_flat(&flat);
        prop_assert_eq!(model.params_flat(), flat);
    }

    /// INT8 quantization error is bounded by scale/2 per element.
    #[test]
    fn quantization_error_bounded(rows in 1usize..12, cols in 1usize..12, seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let m = Matrix::from_fn(rows, cols, |_, _| rng.range_f64(-8.0, 8.0) as f32);
        let q = QuantizedMatrix::quantize(&m);
        let back = q.dequantize();
        let bound = q.max_error_bound() + 1e-6;
        for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
            prop_assert!((a - b).abs() <= bound, "{a} vs {b}, bound {bound}");
        }
    }

    /// bf16 rounding is idempotent and monotone-safe on magnitude.
    #[test]
    fn bf16_idempotent(x in -1e30f32..1e30) {
        let once = bf16_round(x);
        prop_assert_eq!(bf16_round(once), once, "not idempotent for {}", x);
        // Relative error bounded by 2^-8 for normal values.
        if x.abs() > 1e-30 {
            prop_assert!(((once - x) / x).abs() < 0.01, "{} -> {}", x, once);
        }
    }

    /// Dataset shards partition examples exactly.
    #[test]
    fn shards_partition(n in 1usize..200, k in 1usize..8) {
        let data = Dataset::blobs(n, 3, 4, 0.5, 9);
        let shards = data.shards(k);
        prop_assert_eq!(shards.len(), k);
        prop_assert_eq!(shards.iter().map(Dataset::len).sum::<usize>(), n);
    }

    /// The serving simulator completes every request with ordered
    /// percentiles under arbitrary batching configurations.
    #[test]
    fn serving_completes_all_requests(
        replicas in 1usize..4,
        max_batch in 1usize..16,
        delay_ms in 0.0f64..20.0,
        rps in 5.0f64..300.0,
        seed in any::<u64>(),
    ) {
        use opml_mlops::serving::{simulate, LoadSpec, ModelProfile, ServerConfig};
        let r = simulate(
            ModelProfile::fp32_server_gpu(),
            ServerConfig { replicas, max_batch, max_queue_delay_ms: delay_ms },
            LoadSpec { rps, requests: 400 },
            seed,
        );
        prop_assert_eq!(r.completed, 400);
        prop_assert!(r.p50_latency_ms <= r.p95_latency_ms + 1e-9);
        prop_assert!(r.p95_latency_ms <= r.p99_latency_ms + 1e-9);
        prop_assert!(r.mean_batch_size >= 1.0 - 1e-9);
        prop_assert!(r.mean_batch_size <= max_batch as f64 + 1e-9);
        prop_assert!(r.throughput_rps > 0.0);
    }

    /// The orchestrator's rolling update never violates the availability
    /// bound, under arbitrary replica counts and crash probabilities.
    #[test]
    fn rolling_update_availability(
        replicas in 2u32..8,
        max_unavailable in 1u32..3,
        crash_p in 0.0f64..0.15,
        seed in any::<u64>(),
    ) {
        use opml_mlops::orchestrator::{DeploymentSpec, Orchestrator};
        use opml_simkernel::Rng;
        let spec = |image: &str| DeploymentSpec {
            name: "app".into(),
            image: image.into(),
            replicas,
            max_unavailable,
        };
        let mut orch = Orchestrator::new();
        let mut rng = Rng::new(seed);
        orch.apply(&[spec("v1")]);
        for _ in 0..6 {
            orch.tick(&mut rng);
        }
        prop_assert_eq!(orch.ready_pods("app").len() as u32, replicas);
        // Roll with crashes happening: ready count may drop from crashes
        // (which no orchestrator can prevent) but the *update itself*
        // must never take down more than max_unavailable ready pods in a
        // single tick beyond crashes.
        orch.crash_probability = crash_p;
        orch.apply(&[spec("v2")]);
        let mut prev_ready = replicas;
        for _ in 0..40 {
            orch.tick(&mut rng);
            let ready = orch.ready_pods("app").len() as u32;
            // Between consecutive ticks, ready can fall by at most
            // max_unavailable (update) + crashed pods; with crash_p = 0
            // this bound is exactly max_unavailable.
            if crash_p == 0.0 {
                prop_assert!(
                    prev_ready.saturating_sub(ready) <= max_unavailable,
                    "ready dropped {prev_ready} -> {ready}"
                );
            }
            prev_ready = ready;
        }
        // Update converges even under crashes.
        orch.crash_probability = 0.0;
        for _ in 0..10 {
            orch.tick(&mut rng);
        }
        let images = orch.ready_images("app");
        prop_assert_eq!(images.get("v2"), Some(&(replicas as usize)));
        prop_assert_eq!(images.get("v1"), None);
    }
}
