//! # opml-faults
//!
//! Deterministic fault injection for the semester/testbed simulation.
//!
//! The paper's cost overruns are driven by operational friction: launches
//! that fail, instances that die mid-lab, leases that get revoked,
//! students who give up and leave resources running. This crate provides
//! the machinery to inject such faults **reproducibly** and to model how
//! students and schedulers recover:
//!
//! * [`plan`] — a seeded [`FaultPlan`]: every injection decision is drawn
//!   from its own RNG stream derived from `(plan seed, fault kind, site
//!   key, attempt)` with [`opml_simkernel::split_seed`], so decisions are
//!   bit-identical regardless of thread schedule, entity iteration
//!   order, or how many *other* sites consult the plan. A zero-rate plan
//!   never draws and never fires, so it is byte-identical to running
//!   with no plan at all.
//! * [`retry`] — [`RetryPolicy`]: bounded exponential backoff with
//!   seeded jitter and an optional total-deadline budget. The legacy
//!   fixed-interval quota retry is the `factor = 1, jitter = 0` special
//!   case, so the default semester schedule is reproduced exactly.
//! * [`breaker`] — [`CircuitBreaker`]: opens after N consecutive quota
//!   denials and defers retries for a cooldown, modelling students who
//!   stop hammering a full project allocation.
//! * [`profile`] — [`FaultProfile`]: the serializable bundle (rates +
//!   policies + recovery behaviour) carried by `SemesterConfig`, and
//!   [`FaultStats`], the counters a simulation reports back.
//!
//! ## Determinism contract
//!
//! Nothing in this crate holds mutable RNG state across decisions: a
//! [`FaultPlan`] is an immutable value and every query derives a fresh
//! stream from stable identifiers. Replay-equivalence across rayon
//! thread counts is therefore structural, not incidental.

pub mod breaker;
pub mod plan;
pub mod profile;
pub mod retry;

pub use breaker::{BreakerState, CircuitBreaker};
pub use plan::{site_key, FaultKind, FaultPlan, FaultRates};
pub use profile::{FaultProfile, FaultStats};
pub use retry::RetryPolicy;
