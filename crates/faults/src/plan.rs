//! The seeded fault plan: replay-stable injection decisions.

use opml_simkernel::{split_seed, Rng};
use opml_testbed::flavor::FlavorId;
use serde::{Deserialize, Serialize};

/// Where a fault can be injected — the testbed seams the semester and
/// scheduler simulations exercise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FaultKind {
    /// `create_instance` fails transiently at deploy time.
    LaunchFail,
    /// A running instance dies partway through its planned wall time.
    InstanceCrash,
    /// Floating-IP allocation fails (deployment degrades to no public IP).
    FipFail,
    /// Block-volume attach fails transiently.
    VolumeAttach,
    /// An admitted lease is revoked before its window ends.
    LeaseRevoke,
    /// A running scheduler job is preempted (spot reclaim).
    SpotPreempt,
}

impl FaultKind {
    /// All kinds, in stable order.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::LaunchFail,
        FaultKind::InstanceCrash,
        FaultKind::FipFail,
        FaultKind::VolumeAttach,
        FaultKind::LeaseRevoke,
        FaultKind::SpotPreempt,
    ];

    /// Stable telemetry name.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::LaunchFail => "launch_fail",
            FaultKind::InstanceCrash => "instance_crash",
            FaultKind::FipFail => "fip_fail",
            FaultKind::VolumeAttach => "volume_attach",
            FaultKind::LeaseRevoke => "lease_revoke",
            FaultKind::SpotPreempt => "spot_preempt",
        }
    }

    /// Stable stream tag: decorrelates the per-kind decision streams.
    fn tag(self) -> u64 {
        match self {
            FaultKind::LaunchFail => 0xFA01,
            FaultKind::InstanceCrash => 0xFA02,
            FaultKind::FipFail => 0xFA03,
            FaultKind::VolumeAttach => 0xFA04,
            FaultKind::LeaseRevoke => 0xFA05,
            FaultKind::SpotPreempt => 0xFA06,
        }
    }
}

/// Per-kind base injection probabilities (per decision point, in `[0,1]`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultRates {
    /// Launch-failure probability per deployment attempt.
    pub launch_fail: f64,
    /// Mid-lab crash probability per successful deployment.
    pub instance_crash: f64,
    /// Floating-IP allocation failure probability per allocation.
    pub fip_fail: f64,
    /// Volume-attach failure probability per volume creation.
    pub volume_attach: f64,
    /// Lease-revocation probability per provisioned lease.
    pub lease_revoke: f64,
    /// Spot-preemption probability per job start.
    pub spot_preempt: f64,
}

impl FaultRates {
    /// All rates zero — the inert plan.
    pub fn none() -> FaultRates {
        FaultRates::uniform(0.0)
    }

    /// The same rate for every kind (clamped to `[0,1]`).
    pub fn uniform(rate: f64) -> FaultRates {
        let r = rate.clamp(0.0, 1.0);
        FaultRates {
            launch_fail: r,
            instance_crash: r,
            fip_fail: r,
            volume_attach: r,
            lease_revoke: r,
            spot_preempt: r,
        }
    }

    /// Base rate for a kind.
    pub fn rate(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::LaunchFail => self.launch_fail,
            FaultKind::InstanceCrash => self.instance_crash,
            FaultKind::FipFail => self.fip_fail,
            FaultKind::VolumeAttach => self.volume_attach,
            FaultKind::LeaseRevoke => self.lease_revoke,
            FaultKind::SpotPreempt => self.spot_preempt,
        }
    }

    /// True when every rate is zero.
    pub fn is_zero(&self) -> bool {
        FaultKind::ALL.iter().all(|&k| self.rate(k) <= 0.0)
    }
}

/// An immutable, seeded fault plan.
///
/// Every decision is drawn from a stream derived from the plan seed, the
/// fault kind, a caller-supplied stable **site key** (hash the resource
/// name with [`site_key`]), and an attempt number. Two queries with the
/// same arguments always agree; queries at different sites never share
/// state, so adding or removing one site cannot perturb another.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    seed: u64,
    rates: FaultRates,
    /// Per-`(kind, flavor)` rate overrides (e.g. flaky GPU nodes), kept
    /// sorted so serialization and iteration order are stable.
    overrides: Vec<(FaultKind, FlavorId, f64)>,
}

impl FaultPlan {
    /// A plan with the given seed and base rates.
    pub fn new(seed: u64, rates: FaultRates) -> FaultPlan {
        FaultPlan {
            seed,
            rates,
            overrides: Vec::new(),
        }
    }

    /// The inert plan: never fires, never draws.
    pub fn none() -> FaultPlan {
        FaultPlan::new(0, FaultRates::none())
    }

    /// Override the rate of `kind` for one flavor (builder style).
    pub fn with_flavor_rate(mut self, kind: FaultKind, flavor: FlavorId, rate: f64) -> FaultPlan {
        let rate = rate.clamp(0.0, 1.0);
        match self
            .overrides
            .iter_mut()
            .find(|(k, f, _)| *k == kind && *f == flavor)
        {
            Some(slot) => slot.2 = rate,
            None => {
                self.overrides.push((kind, flavor, rate));
                self.overrides.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
            }
        }
        self
    }

    /// The plan seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Base rates.
    pub fn rates(&self) -> &FaultRates {
        &self.rates
    }

    /// Effective rate for a kind at a flavor.
    pub fn rate(&self, kind: FaultKind, flavor: Option<FlavorId>) -> f64 {
        flavor
            .and_then(|f| {
                self.overrides
                    .iter()
                    .find(|(k, of, _)| *k == kind && *of == f)
                    .map(|&(_, _, r)| r)
            })
            .unwrap_or_else(|| self.rates.rate(kind))
    }

    /// True when no query can ever fire (zero rates, no overrides above 0).
    pub fn is_inert(&self) -> bool {
        self.rates.is_zero() && self.overrides.iter().all(|&(_, _, r)| r <= 0.0)
    }

    /// The decision stream for `(kind, site, attempt)`.
    fn stream(&self, kind: FaultKind, site: u64, attempt: u32) -> Rng {
        Rng::for_stream(split_seed(self.seed ^ kind.tag(), site), u64::from(attempt))
    }

    /// Does a fault of `kind` fire at this site/attempt?
    ///
    /// Zero-rate queries return `false` without constructing a stream, so
    /// an inert plan is free and byte-identical to no plan.
    pub fn fires(
        &self,
        kind: FaultKind,
        flavor: Option<FlavorId>,
        site: u64,
        attempt: u32,
    ) -> bool {
        let rate = self.rate(kind, flavor);
        if rate <= 0.0 {
            return false;
        }
        self.stream(kind, site, attempt).chance(rate)
    }

    /// A uniform draw in `[lo, hi)` on a stream decorrelated from the
    /// `fires` decision at the same site (used for crash/preemption
    /// points and revocation instants).
    pub fn fraction(&self, kind: FaultKind, site: u64, attempt: u32, lo: f64, hi: f64) -> f64 {
        let mut rng = self.stream(kind, site, attempt);
        // Burn the `fires` draw so the fraction is independent of it.
        let _ = rng.f64();
        rng.range_f64(lo, hi)
    }
}

/// Stable 64-bit site key from a resource name (FNV-1a).
///
/// Deterministic across runs, platforms, and toolchains — unlike
/// `DefaultHasher`, whose per-process keys detlint bans (DL001).
pub fn site_key(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_fires() {
        let plan = FaultPlan::none();
        assert!(plan.is_inert());
        for &kind in &FaultKind::ALL {
            for site in 0..100 {
                assert!(!plan.fires(kind, None, site, 0));
            }
        }
    }

    #[test]
    fn full_rate_always_fires() {
        let plan = FaultPlan::new(7, FaultRates::uniform(1.0));
        for &kind in &FaultKind::ALL {
            assert!(plan.fires(kind, None, 42, 3));
        }
    }

    #[test]
    fn decisions_are_replay_stable() {
        let plan = FaultPlan::new(99, FaultRates::uniform(0.3));
        for &kind in &FaultKind::ALL {
            for site in 0..200u64 {
                let a = plan.fires(kind, None, site, 1);
                let b = plan.fires(kind, None, site, 1);
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn sites_and_attempts_decorrelate() {
        let plan = FaultPlan::new(5, FaultRates::uniform(0.5));
        let hits = |f: &dyn Fn(u64) -> bool| (0..1000).filter(|&i| f(i)).count();
        let by_site = hits(&|i| plan.fires(FaultKind::LaunchFail, None, i, 0));
        let by_attempt = hits(&|i| plan.fires(FaultKind::LaunchFail, None, 7, i as u32));
        // Roughly half fire either way; neither collapses to all/none.
        assert!((300..700).contains(&by_site), "{by_site}");
        assert!((300..700).contains(&by_attempt), "{by_attempt}");
    }

    #[test]
    fn observed_rate_tracks_configured_rate() {
        let plan = FaultPlan::new(11, FaultRates::uniform(0.2));
        let n = 20_000;
        let fired = (0..n)
            .filter(|&i| plan.fires(FaultKind::InstanceCrash, None, i, 0))
            .count();
        let observed = fired as f64 / n as f64;
        assert!((observed - 0.2).abs() < 0.02, "observed {observed}");
    }

    #[test]
    fn flavor_override_applies() {
        let plan = FaultPlan::new(3, FaultRates::none()).with_flavor_rate(
            FaultKind::LaunchFail,
            FlavorId::GpuV100,
            1.0,
        );
        assert!(!plan.is_inert());
        assert!(plan.fires(FaultKind::LaunchFail, Some(FlavorId::GpuV100), 1, 0));
        assert!(!plan.fires(FaultKind::LaunchFail, Some(FlavorId::M1Small), 1, 0));
        assert!(!plan.fires(FaultKind::LaunchFail, None, 1, 0));
    }

    #[test]
    fn fraction_in_bounds_and_stable() {
        let plan = FaultPlan::new(13, FaultRates::uniform(0.5));
        for site in 0..500 {
            let f = plan.fraction(FaultKind::InstanceCrash, site, 0, 0.05, 0.95);
            assert!((0.05..0.95).contains(&f));
            assert_eq!(
                f,
                plan.fraction(FaultKind::InstanceCrash, site, 0, 0.05, 0.95)
            );
        }
    }

    #[test]
    fn site_key_is_stable_and_spread() {
        assert_eq!(site_key("lab2-s003"), site_key("lab2-s003"));
        assert_ne!(site_key("lab2-s003"), site_key("lab2-s004"));
        // Pin the FNV constant so the stream never silently changes.
        assert_eq!(site_key(""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn serialization_is_stable() {
        let plan = FaultPlan::new(21, FaultRates::uniform(0.1)).with_flavor_rate(
            FaultKind::SpotPreempt,
            FlavorId::GpuA100Pcie,
            0.9,
        );
        let a = serde_json::to_string(&plan).expect("serialize");
        let b = serde_json::to_string(&plan.clone()).expect("serialize");
        assert_eq!(a, b);
        assert!(a.contains("\"seed\":21"));
    }
}
