//! Circuit breaker for repeated quota denial.
//!
//! When a project allocation is full, every student deployment attempt
//! fails the same way; retrying on the normal backoff schedule just
//! hammers the API (and, in the real course, the help queue). The
//! breaker models the staff announcement "stop launching until
//! capacity frees up": after `threshold` consecutive denials it opens
//! and all retries are deferred until a cooldown has passed, then one
//! probe attempt is allowed through (half-open) before it either closes
//! (probe succeeded) or re-opens (probe denied).

use opml_simkernel::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Breaker position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Normal operation; failures are counted.
    Closed,
    /// Tripped: requests are deferred until the cooldown passes.
    Open,
    /// Cooldown passed: one probe request is allowed through.
    HalfOpen,
}

/// A sim-time circuit breaker keyed on consecutive failures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: SimDuration,
    consecutive_failures: u32,
    state: BreakerState,
    opened_at: Option<SimTime>,
    /// A half-open probe has been admitted and has not yet reported
    /// back; further probe requests are refused until it does.
    #[serde(default)]
    probe_in_flight: bool,
}

impl CircuitBreaker {
    /// A breaker that opens after `threshold` consecutive failures and
    /// holds for `cooldown`.
    pub fn new(threshold: u32, cooldown: SimDuration) -> CircuitBreaker {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            consecutive_failures: 0,
            state: BreakerState::Closed,
            opened_at: None,
            probe_in_flight: false,
        }
    }

    /// Current state, advancing Open → HalfOpen if the cooldown passed.
    pub fn state(&self, now: SimTime) -> BreakerState {
        match (self.state, self.opened_at) {
            (BreakerState::Open, Some(at)) if now.since(at) >= self.cooldown => {
                BreakerState::HalfOpen
            }
            (s, _) => s,
        }
    }

    /// Whether a request should be deferred at `now`.
    pub fn is_open(&self, now: SimTime) -> bool {
        self.state(now) == BreakerState::Open
    }

    /// Earliest time a deferred request may be retried (`None` when the
    /// breaker is not open).
    pub fn retry_at(&self, now: SimTime) -> Option<SimTime> {
        match (self.state(now), self.opened_at) {
            (BreakerState::Open, Some(at)) => Some(at + self.cooldown),
            _ => None,
        }
    }

    /// Admit **one** probe while half-open. Returns `true` exactly once
    /// per cooldown window: the first caller after the cooldown passes
    /// gets the probe slot; everyone else is refused until the probe
    /// reports back via [`CircuitBreaker::record_success`] /
    /// [`CircuitBreaker::record_failure`]. Callers that gate requests
    /// on the breaker should use this instead of
    /// [`CircuitBreaker::is_open`], which lets *every* request through
    /// once the cooldown has passed.
    pub fn try_acquire_probe(&mut self, now: SimTime) -> bool {
        if self.state(now) == BreakerState::HalfOpen && !self.probe_in_flight {
            self.probe_in_flight = true;
            true
        } else {
            false
        }
    }

    /// Record a failed attempt; returns `true` if this failure tripped
    /// the breaker open (for telemetry).
    pub fn record_failure(&mut self, now: SimTime) -> bool {
        match self.state(now) {
            BreakerState::HalfOpen => {
                // Probe failed: re-open for another cooldown.
                self.state = BreakerState::Open;
                self.opened_at = Some(now);
                self.probe_in_flight = false;
                true
            }
            BreakerState::Open => false,
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.threshold {
                    self.state = BreakerState::Open;
                    self.opened_at = Some(now);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record a successful attempt: closes the breaker and resets the
    /// failure count.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.state = BreakerState::Closed;
        self.opened_at = None;
        self.probe_in_flight = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(h: u64) -> SimTime {
        SimTime(h * 60)
    }

    #[test]
    fn opens_after_threshold_and_cools_down() {
        let mut b = CircuitBreaker::new(3, SimDuration::hours(6));
        assert!(!b.record_failure(t(0)));
        assert!(!b.record_failure(t(1)));
        assert!(b.record_failure(t(2)), "third failure trips");
        assert!(b.is_open(t(3)));
        assert_eq!(b.retry_at(t(3)), Some(t(8)));
        // Cooldown passed → half-open, requests allowed.
        assert_eq!(b.state(t(9)), BreakerState::HalfOpen);
        assert!(!b.is_open(t(9)));
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let mut b = CircuitBreaker::new(1, SimDuration::hours(2));
        b.record_failure(t(0));
        assert_eq!(b.state(t(3)), BreakerState::HalfOpen);
        assert!(b.record_failure(t(3)), "probe failure re-trips");
        assert!(b.is_open(t(4)));
        assert_eq!(b.retry_at(t(4)), Some(t(5)));
    }

    #[test]
    fn open_half_open_closed_admits_one_probe() {
        let mut b = CircuitBreaker::new(2, SimDuration::hours(4));
        b.record_failure(t(0));
        assert!(b.record_failure(t(1)), "second failure trips");
        // Still cooling down: no probe slot.
        assert!(!b.try_acquire_probe(t(2)));
        // Cooldown passed: exactly one probe slot per window.
        assert!(b.try_acquire_probe(t(5)));
        assert!(!b.try_acquire_probe(t(5)), "second probe refused");
        assert!(!b.try_acquire_probe(t(6)), "still refused while in flight");
        // Probe succeeds → closed, normal traffic resumes.
        b.record_success();
        assert_eq!(b.state(t(6)), BreakerState::Closed);
        assert!(
            !b.try_acquire_probe(t(6)),
            "closed breakers have no probe slot; callers go straight through"
        );
    }

    #[test]
    fn open_half_open_open_reopens_and_rearms_probe() {
        let mut b = CircuitBreaker::new(1, SimDuration::hours(2));
        b.record_failure(t(0));
        assert!(b.try_acquire_probe(t(3)));
        // Probe denied → re-open for a fresh cooldown from t(3).
        assert!(b.record_failure(t(3)));
        assert!(b.is_open(t(4)));
        assert!(!b.try_acquire_probe(t(4)), "cooling down again");
        // Next window re-arms a single probe slot.
        assert!(b.try_acquire_probe(t(5)));
        assert!(!b.try_acquire_probe(t(5)));
    }

    #[test]
    fn success_closes_and_resets() {
        let mut b = CircuitBreaker::new(2, SimDuration::hours(1));
        b.record_failure(t(0));
        b.record_failure(t(0));
        assert!(b.is_open(t(0)));
        b.record_success();
        assert_eq!(b.state(t(0)), BreakerState::Closed);
        // Count restarted: one failure does not trip again.
        assert!(!b.record_failure(t(1)));
    }
}
