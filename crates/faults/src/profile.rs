//! The serializable fault configuration carried by `SemesterConfig`,
//! and the recovery counters a simulation reports back.

use crate::breaker::CircuitBreaker;
use crate::plan::FaultRates;
use crate::retry::RetryPolicy;
use opml_simkernel::SimDuration;
use serde::{Deserialize, Serialize};

/// Circuit-breaker settings (see [`CircuitBreaker`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BreakerSettings {
    /// Consecutive quota denials before the breaker opens.
    pub threshold: u32,
    /// How long an open breaker defers retries.
    pub cooldown: SimDuration,
}

impl BreakerSettings {
    /// Build the runtime breaker.
    pub fn build(&self) -> CircuitBreaker {
        CircuitBreaker::new(self.threshold, self.cooldown)
    }
}

/// Everything a semester needs to know about failure handling: which
/// faults to inject and how students recover.
///
/// [`FaultProfile::none`] is the exact pre-fault behaviour: zero rates,
/// the legacy fixed 4-hour quota retry, no breaker, no leaks — a
/// semester run with it is byte-identical to one run before this module
/// existed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Injection rates per fault kind.
    pub rates: FaultRates,
    /// Retry schedule for quota denials (legacy: fixed 4 h, 100 tries).
    pub quota_retry: RetryPolicy,
    /// Retry schedule for injected transient faults.
    pub fault_retry: RetryPolicy,
    /// Optional circuit breaker on repeated quota denial.
    pub breaker: Option<BreakerSettings>,
    /// Probability that a student who abandons a lab after repeated
    /// failures walks away **without** releasing held resources — the
    /// paper's signature cost pathology (leaked instances/IPs/volumes
    /// metered until semester finalize).
    pub leak_prob: f64,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile::none()
    }
}

impl FaultProfile {
    /// The fault-free profile reproducing the legacy semester exactly.
    pub fn none() -> FaultProfile {
        FaultProfile {
            rates: FaultRates::none(),
            quota_retry: RetryPolicy::fixed(SimDuration::hours(4), 100),
            fault_retry: FaultProfile::default_fault_retry(),
            breaker: None,
            leak_prob: 0.0,
        }
    }

    /// A chaos profile: every kind injected at `rate`, exponential
    /// backoff with jitter, a quota breaker, and a 35% walk-away leak
    /// probability on abandonment.
    pub fn chaos(rate: f64) -> FaultProfile {
        FaultProfile {
            rates: FaultRates::uniform(rate),
            quota_retry: RetryPolicy::fixed(SimDuration::hours(4), 100),
            fault_retry: FaultProfile::default_fault_retry(),
            breaker: Some(BreakerSettings {
                threshold: 8,
                cooldown: SimDuration::hours(12),
            }),
            leak_prob: 0.35,
        }
    }

    /// The default transient-fault retry: 30 min doubling to an 8-hour
    /// cap, 5 attempts, 50% jitter, two-day budget.
    fn default_fault_retry() -> RetryPolicy {
        RetryPolicy::exponential(SimDuration::minutes(30), 2.0, SimDuration::hours(8), 5, 0.5)
            .with_deadline(SimDuration::days(2))
    }

    /// True when this profile cannot change a fault-free run: no
    /// injections (retry policies only matter once something fails, and
    /// quota denials follow `quota_retry`, which callers keep legacy).
    pub fn is_inert(&self) -> bool {
        self.rates.is_zero()
    }
}

/// Counters describing what the failure path did during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Faults injected (all kinds).
    pub injected: u64,
    /// Retry attempts scheduled (quota and fault causes).
    pub retries: u64,
    /// Operations abandoned after exhausting their retry policy.
    pub abandoned: u64,
    /// Deployments leaked by a walk-away student (metered to finalize).
    pub leaked: u64,
    /// Lease slots successfully rebooked after a revocation.
    pub requeued: u64,
    /// Deployments that degraded (e.g. continued without a floating IP).
    pub degraded: u64,
    /// Times the quota circuit breaker tripped open.
    pub breaker_trips: u64,
}

impl FaultStats {
    /// Sum of all counters (quick "anything happened?" check).
    pub fn total(&self) -> u64 {
        self.injected
            + self.retries
            + self.abandoned
            + self.leaked
            + self.requeued
            + self.degraded
            + self.breaker_trips
    }

    /// Fold another run's counters into this one (fieldwise sum).
    ///
    /// This is the shard-merge law for fault statistics: counter
    /// addition over `u64` is exact, so merging per-shard stats is
    /// associative and commutative — any grouping or ordering of shards
    /// yields the identical struct. Property-tested in
    /// `crates/metering/tests/shard_merge.rs`.
    pub fn merge(&mut self, other: &FaultStats) {
        self.injected += other.injected;
        self.retries += other.retries;
        self.abandoned += other.abandoned;
        self.leaked += other.leaked;
        self.requeued += other.requeued;
        self.degraded += other.degraded;
        self.breaker_trips += other.breaker_trips;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_merge_is_fieldwise_and_commutative() {
        let a = FaultStats {
            injected: 1,
            retries: 2,
            abandoned: 3,
            leaked: 4,
            requeued: 5,
            degraded: 6,
            breaker_trips: 7,
        };
        let b = FaultStats {
            injected: 10,
            ..FaultStats::default()
        };
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.injected, 11);
        assert_eq!(ab.total(), a.total() + b.total());
    }

    #[test]
    fn none_profile_is_inert_and_legacy_shaped() {
        let p = FaultProfile::none();
        assert!(p.is_inert());
        assert_eq!(
            p.quota_retry,
            RetryPolicy::fixed(SimDuration::hours(4), 100)
        );
        assert!(p.breaker.is_none());
        assert_eq!(p.leak_prob, 0.0);
    }

    #[test]
    fn chaos_profile_injects() {
        let p = FaultProfile::chaos(0.1);
        assert!(!p.is_inert());
        assert!(p.breaker.is_some());
        assert!(p.leak_prob > 0.0);
        assert_eq!(p.rates.launch_fail, 0.1);
    }

    #[test]
    fn stats_total() {
        let mut s = FaultStats::default();
        assert_eq!(s.total(), 0);
        s.injected = 2;
        s.leaked = 1;
        assert_eq!(s.total(), 3);
    }

    #[test]
    fn serialization_is_stable() {
        let p = FaultProfile::chaos(0.25);
        let a = serde_json::to_string(&p).expect("serialize");
        assert_eq!(a, serde_json::to_string(&p.clone()).expect("serialize"));
        assert!(a.contains("leak_prob"));
    }
}
