//! Retry policies: bounded exponential backoff with seeded jitter.

use opml_simkernel::{split_seed, Rng, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Stream tag decorrelating jitter draws from fault-plan decision draws.
const JITTER_TAG: u64 = 0x4A17;

/// How a simulated actor retries a failed operation.
///
/// The delay before retry `n` (1-based) is
/// `min(base · factor^(n-1), cap)`, scaled by a deterministic jitter
/// factor in `[1 − jitter, 1]`. Retries stop after [`max_attempts`]
/// failures or once the [`deadline`] budget (measured from the first
/// attempt) is exhausted — the caller then abandons or degrades.
///
/// The legacy semester behaviour — "try again 4 hours later, up to 100
/// times" — is exactly [`RetryPolicy::fixed`]`(4h, 100)`: factor 1 and
/// jitter 0, so no stream is ever consulted and the schedule is
/// byte-identical to the pre-fault code.
///
/// [`max_attempts`]: RetryPolicy::max_attempts
/// [`deadline`]: RetryPolicy::deadline
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Delay before the first retry.
    pub base: SimDuration,
    /// Multiplier applied per subsequent retry.
    pub factor: f64,
    /// Upper bound on any single delay.
    pub cap: SimDuration,
    /// Give up after this many failed attempts.
    pub max_attempts: u32,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a uniform
    /// draw in `[1 − jitter, 1]` (decorrelates synchronized retries).
    pub jitter: f64,
    /// Optional total retry budget measured from the first failure.
    pub deadline: Option<SimDuration>,
}

impl RetryPolicy {
    /// Fixed-interval retries: no growth, no jitter, no deadline.
    pub fn fixed(delay: SimDuration, max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            base: delay,
            factor: 1.0,
            cap: delay,
            max_attempts,
            jitter: 0.0,
            deadline: None,
        }
    }

    /// Bounded exponential backoff with jitter.
    pub fn exponential(
        base: SimDuration,
        factor: f64,
        cap: SimDuration,
        max_attempts: u32,
        jitter: f64,
    ) -> RetryPolicy {
        RetryPolicy {
            base,
            factor: factor.max(1.0),
            cap,
            max_attempts,
            jitter: jitter.clamp(0.0, 1.0),
            deadline: None,
        }
    }

    /// Add a total-deadline budget (builder style).
    pub fn with_deadline(mut self, deadline: SimDuration) -> RetryPolicy {
        self.deadline = Some(deadline);
        self
    }

    /// Delay before retry number `attempt` (1-based, i.e. the number of
    /// failures so far). `None` means give up.
    ///
    /// Jitter is drawn from a stream derived from `(seed, site, attempt)`
    /// so the same retry in two runs waits exactly as long.
    pub fn backoff(&self, seed: u64, site: u64, attempt: u32) -> Option<SimDuration> {
        if attempt >= self.max_attempts {
            return None;
        }
        let attempt = attempt.max(1);
        let exp = self.base.0 as f64 * self.factor.powi(attempt as i32 - 1);
        let capped = exp.min(self.cap.0 as f64);
        let scaled = if self.jitter > 0.0 {
            let mut rng = Rng::for_stream(split_seed(seed ^ JITTER_TAG, site), u64::from(attempt));
            capped * rng.range_f64(1.0 - self.jitter, 1.0)
        } else {
            capped
        };
        // Round up so a nonzero delay never collapses to "now".
        Some(SimDuration(scaled.ceil().max(1.0) as u64))
    }

    /// Whether the total budget is spent at `now` for a retry sequence
    /// whose first failure happened at `first_failure`.
    pub fn deadline_exceeded(&self, first_failure: SimTime, now: SimTime) -> bool {
        match self.deadline {
            None => false,
            Some(budget) => now.since(first_failure) >= budget,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_reproduces_legacy_schedule() {
        // The pre-fault semester: 4-hour fixed retry, give up at 100.
        let p = RetryPolicy::fixed(SimDuration::hours(4), 100);
        for attempt in 1..100 {
            assert_eq!(p.backoff(1, 2, attempt), Some(SimDuration::hours(4)));
        }
        assert_eq!(p.backoff(1, 2, 100), None);
        assert_eq!(
            p.backoff(99, 77, 5),
            Some(SimDuration::hours(4)),
            "seed-free"
        );
    }

    #[test]
    fn exponential_grows_and_caps() {
        let p = RetryPolicy::exponential(
            SimDuration::minutes(30),
            2.0,
            SimDuration::hours(8),
            10,
            0.0,
        );
        assert_eq!(p.backoff(0, 0, 1), Some(SimDuration::minutes(30)));
        assert_eq!(p.backoff(0, 0, 2), Some(SimDuration::hours(1)));
        assert_eq!(p.backoff(0, 0, 3), Some(SimDuration::hours(2)));
        // 30 min · 2^7 = 64 h, capped at 8 h.
        assert_eq!(p.backoff(0, 0, 8), Some(SimDuration::hours(8)));
        assert_eq!(p.backoff(0, 0, 10), None);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let p =
            RetryPolicy::exponential(SimDuration::hours(1), 2.0, SimDuration::hours(24), 20, 0.5);
        for site in 0..200u64 {
            let d = p.backoff(7, site, 3).expect("within attempts");
            // Un-jittered delay is 4 h; jitter scales into [2 h, 4 h].
            assert!(
                d >= SimDuration::hours(2) && d <= SimDuration::hours(4),
                "{d:?}"
            );
            assert_eq!(Some(d), p.backoff(7, site, 3), "jitter must replay");
        }
        // Different sites actually jitter differently.
        let a = p.backoff(7, 1, 3);
        let b = p.backoff(7, 2, 3);
        assert!(a != b || p.backoff(7, 3, 3) != a, "jitter looks constant");
    }

    #[test]
    fn deadline_budget() {
        let p =
            RetryPolicy::fixed(SimDuration::hours(1), 100).with_deadline(SimDuration::hours(12));
        let first = SimTime::at(1, 0, 0, 0);
        assert!(!p.deadline_exceeded(first, first + SimDuration::hours(11)));
        assert!(p.deadline_exceeded(first, first + SimDuration::hours(12)));
    }

    #[test]
    fn serialization_is_stable() {
        let p =
            RetryPolicy::exponential(SimDuration::minutes(15), 1.5, SimDuration::hours(6), 5, 0.3)
                .with_deadline(SimDuration::days(2));
        let a = serde_json::to_string(&p).expect("serialize");
        assert_eq!(a, serde_json::to_string(&p.clone()).expect("serialize"));
        assert!(a.contains("\"max_attempts\":5"));
    }
}
