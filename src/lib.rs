//! # ml-ops-course
//!
//! Facade crate for the reproduction of *The Cost of Teaching Operational
//! ML* (Fund et al., SC Workshops '25). Re-exports every subsystem crate so
//! downstream users depend on a single package:
//!
//! * [`simkernel`] — discrete-event kernel, RNG streams, statistics.
//! * [`testbed`] — OpenStack-like research-cloud simulator (Chameleon model).
//! * [`sched`] — GPU-cluster job scheduler (FCFS / backfill / gang / fair share).
//! * [`mlops`] — the operational-ML substrate the course teaches: tensors and
//!   models, ring all-reduce and distributed training, experiment tracking,
//!   model registry, DAG pipelines, serving with dynamic batching,
//!   monitoring, drift detection, data systems, CI/CD.
//! * [`pricing`] — AWS/GCP pricing catalogs and the cheapest-adequate-instance
//!   cost model.
//! * [`faults`] — deterministic fault injection plans, retry/backoff
//!   policies, circuit breaker.
//! * [`cohort`] — course structure, student behaviour model, semester driver.
//! * [`metering`] — usage-ledger aggregation and attribution.
//! * [`telemetry`] — deterministic sim-time tracing, metrics registry,
//!   JSONL / Chrome trace-event export.
//! * [`report`] — tables, histograms, comparison records.
//! * [`experiments`] — one entry point per paper table/figure.
//!
//! ## Quickstart
//!
//! ```
//! use ml_ops_course::prelude::*;
//!
//! // Simulate one 191-student semester and price it on commercial clouds.
//! let config = SemesterConfig::paper_course();
//! let outcome = simulate_semester(&config, 42);
//! let rollup = AssignmentRollup::from_ledger(&outcome.ledger, config.enrollment as usize);
//! let table = price_lab_assignments(&rollup);
//! assert!(table.total.instance_hours > 50_000.0);
//! ```

pub use opml_cohort as cohort;
pub use opml_experiments as experiments;
pub use opml_faults as faults;
pub use opml_metering as metering;
pub use opml_mlops as mlops;
pub use opml_pricing as pricing;
pub use opml_profiler as profiler;
pub use opml_report as report;
pub use opml_sched as sched;
pub use opml_simkernel as simkernel;
pub use opml_telemetry as telemetry;
pub use opml_testbed as testbed;

/// The most common imports for driving a full simulation.
pub mod prelude {
    pub use opml_cohort::semester::{simulate_semester, SemesterConfig, SemesterOutcome};
    pub use opml_faults::{FaultPlan, FaultProfile, RetryPolicy};
    pub use opml_metering::rollup::AssignmentRollup;
    pub use opml_pricing::estimate::price_lab_assignments;
    pub use opml_simkernel::{Rng, SimDuration, SimTime};
    pub use opml_telemetry::{MemorySink, Telemetry};
    pub use opml_testbed::cloud::Cloud;
}
