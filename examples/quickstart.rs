//! Quickstart: simulate the paper's 191-student semester, roll up the
//! usage ledger, and price it on commercial clouds.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ml_ops_course::prelude::*;
use ml_ops_course::pricing::catalog::Provider;
use ml_ops_course::pricing::estimate::{per_student_lab_costs, price_project, ProjectUsageSummary};
use ml_ops_course::report::table::{fmt_num, fmt_usd};

fn main() {
    let seed = 42;
    println!("Simulating 'Machine Learning Systems Engineering and Operations'…");
    let config = SemesterConfig::paper_course();
    let outcome = simulate_semester(&config, seed);
    println!(
        "  {} usage records, {} quota denials, {} reservation pushbacks",
        outcome.ledger.records().len(),
        outcome.quota_denials,
        outcome.slot_pushbacks
    );

    let rollup = AssignmentRollup::from_ledger(&outcome.ledger, config.enrollment as usize);
    let table = price_lab_assignments(&rollup);
    println!("\nLab assignments (Table 1 scope):");
    println!(
        "  instance hours : {}",
        fmt_num(table.total.instance_hours, 0)
    );
    println!("  floating-IP hrs: {}", fmt_num(table.total.fip_hours, 0));
    println!(
        "  commercial cost: {} AWS ({} / student), {} GCP ({} / student)",
        fmt_usd(table.total.aws_usd),
        fmt_usd(table.total.aws_per_student),
        fmt_usd(table.total.gcp_usd),
        fmt_usd(table.total.gcp_per_student),
    );

    let project = ProjectUsageSummary::from_ledger(&outcome.ledger);
    println!("\nOpen-ended projects:");
    println!(
        "  {} VM h, {} GPU h, {} bare-metal h, {} edge h",
        fmt_num(project.vm_hours, 0),
        fmt_num(project.gpu_hours, 0),
        fmt_num(project.baremetal_cpu_hours, 0),
        fmt_num(project.edge_hours, 0),
    );
    println!(
        "  storage: {} GB block (peak), {} GB object",
        fmt_num(project.peak_block_gb as f64, 0),
        fmt_num(project.object_gb, 0)
    );
    let proj_aws = price_project(&project, Provider::Aws);
    let proj_gcp = price_project(&project, Provider::Gcp);
    println!(
        "  cost: {} AWS / {} GCP",
        fmt_usd(proj_aws),
        fmt_usd(proj_gcp)
    );

    let per_student =
        ml_ops_course::metering::rollup::PerStudentUsage::from_ledger(&outcome.ledger);
    let costs = per_student_lab_costs(&per_student, Provider::Aws);
    let max = costs.iter().map(|&(_, c)| c).fold(0.0f64, f64::max);
    let total_per_student = table.total.aws_per_student + proj_aws / config.enrollment as f64;
    println!("\nHeadlines:");
    println!(
        "  total instance hours: {}",
        fmt_num(
            table.total.instance_hours + project.total_instance_hours(),
            0
        )
    );
    println!("  all-in per student (AWS): {}", fmt_usd(total_per_student));
    println!("  most expensive student (labs, AWS): {}", fmt_usd(max));
}
