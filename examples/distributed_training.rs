//! Distributed-training deep dive: the Unit 4 lecture's ring all-reduce
//! story, measured.
//!
//! Shows (1) the per-worker bytes of ring vs tree vs parameter-server
//! collectives across worker counts — ring's bandwidth optimality;
//! (2) DDP vs FSDP on the same task — same accuracy, sharded memory;
//! (3) the training-memory arithmetic that motivates LoRA/QLoRA for the
//! lab's 13B-parameter fine-tune.
//!
//! ```sh
//! cargo run --release --example distributed_training
//! ```

use ml_ops_course::mlops::allreduce::{all_reduce, ReduceAlgo};
use ml_ops_course::mlops::ddp::{train_ddp, DdpConfig};
use ml_ops_course::mlops::fsdp::{train_fsdp, FsdpConfig};
use ml_ops_course::mlops::model::Dataset;
use ml_ops_course::mlops::modelparallel::{train_pipeline, PipelineConfig};
use ml_ops_course::mlops::precision::{training_memory_gb, TrainingMemoryConfig};
use ml_ops_course::report::table::{fmt_num, Table};
use ml_ops_course::simkernel::Rng;

fn main() {
    // ---- 1. Collective bandwidth ------------------------------------
    println!("Per-worker bytes to all-reduce a 4 MB gradient buffer:\n");
    let elements = 1_000_000; // 4 MB of f32
    let mut table = Table::new(&[
        "Workers",
        "ring max B/worker",
        "tree max",
        "param-server max",
    ]);
    for n in [2usize, 4, 8] {
        let mut row = vec![n.to_string()];
        for algo in [
            ReduceAlgo::Ring,
            ReduceAlgo::Tree,
            ReduceAlgo::ParameterServer,
        ] {
            let mut rng = Rng::new(n as u64);
            let mut bufs: Vec<Vec<f32>> = (0..n)
                .map(|_| {
                    (0..elements)
                        .map(|_| rng.range_f64(-1.0, 1.0) as f32)
                        .collect()
                })
                .collect();
            let stats = all_reduce(&mut bufs, algo);
            row.push(fmt_num(stats.max_bytes_per_worker() as f64, 0));
        }
        table.row(&row);
    }
    println!("{}", table.render());
    println!(
        "Ring's bottleneck stays ≈ 2·S regardless of N (bandwidth optimal);\n\
         the parameter-server root grows linearly with N.\n"
    );

    // ---- 2. DDP vs FSDP ----------------------------------------------
    let data = Dataset::blobs(440, 8, 11, 0.6, 77);
    let (ddp_model, ddp) = train_ddp(
        &DdpConfig {
            sizes: vec![8, 32, 11],
            workers: 4,
            epochs: 15,
            batch_size: 16,
            lr: 0.1,
            momentum: 0.9,
            algo: ReduceAlgo::Ring,
            seed: 88,
        },
        &data,
    );
    let (fsdp_model, fsdp) = train_fsdp(
        &FsdpConfig {
            sizes: vec![8, 32, 11],
            workers: 4,
            epochs: 15,
            batch_size: 16,
            lr: 0.1,
            momentum: 0.9,
            seed: 88,
        },
        &data,
    );
    let _ = (ddp_model, fsdp_model);
    println!(
        "DDP  (4 workers): accuracy {:.3}, in sync: {}",
        ddp.history.last().unwrap().1,
        ddp.in_sync
    );
    println!(
        "FSDP (4 workers): accuracy {:.3}, persistent params/worker {} of {} total",
        fsdp.history.last().unwrap().1,
        fsdp.persistent_params_per_worker,
        fsdp.peak_params_per_worker
    );
    // Pipeline model parallelism: stage the layers, stream micro-batches.
    for micro in [2usize, 8] {
        let (_, pipe) = train_pipeline(
            &PipelineConfig {
                sizes: vec![8, 32, 32, 11],
                stages: 3,
                micro_batches: micro,
                micro_batch_size: 16,
                steps: 120,
                lr: 0.1,
                seed: 88,
            },
            &data,
        );
        println!(
            "PIPE (3 stages, {micro} micro-batches): accuracy {:.3}, bubble {:.0}%, ≤{} params/stage",
            pipe.accuracy,
            pipe.bubble_fraction * 100.0,
            pipe.max_params_per_stage
        );
    }

    // ---- 3. Why the 13B fine-tune needs all of this -----------------
    println!("\nTraining-memory estimates for the lab's 13B-parameter LLM:");
    let full = TrainingMemoryConfig::llm_13b_full_f32();
    let qlora = TrainingMemoryConfig::llm_13b_qlora();
    let mut sharded = full.clone();
    sharded.shards = 4;
    println!(
        "  full fine-tune, f32 + Adam, 1 GPU : {:>8.0} GB  (impossible)",
        training_memory_gb(&full)
    );
    println!(
        "  FSDP across 4 GPUs                : {:>8.0} GB/GPU",
        training_memory_gb(&sharded)
    );
    println!(
        "  QLoRA (int4 base + LoRA adapters) : {:>8.0} GB  (fits one A100-80GB — the lab's recipe)",
        training_memory_gb(&qlora)
    );
}
