//! Full evaluation report: every table and figure of the paper, printed.
//!
//! Thin wrapper over `opml-experiments` for users of the facade crate —
//! equivalent to `cargo run -p opml-experiments --bin run-experiments`
//! but showing the library API.
//!
//! ```sh
//! cargo run --release --example semester_report
//! ```

use ml_ops_course::experiments::{
    fig1, fig2, fig3, headline, project_cost, run_paper_course, table1,
};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);
    let ctx = run_paper_course(seed);

    let (text, cmp1) = table1::run(&ctx);
    println!("Table 1 (seed {seed})\n{text}");
    let (text, cmp2) = fig1::run(&ctx);
    println!("Figure 1\n{text}");
    let (text, cmp3) = fig2::run(&ctx);
    println!("Figure 2\n{text}");
    let (text, cmp4) = fig3::run(&ctx);
    println!("Figure 3\n{text}");
    let (text, cmp5) = project_cost::run(&ctx);
    println!("Project phase\n{text}");
    let (text, cmp6) = headline::run(&ctx);
    println!("Headlines\n{text}");

    let sets = [cmp1, cmp2, cmp3, cmp4, cmp5, cmp6];
    let total: usize = sets.iter().map(|s| s.rows.len()).sum();
    let pass: usize = sets
        .iter()
        .flat_map(|s| &s.rows)
        .filter(|c| c.within_tolerance())
        .count();
    println!("paper-vs-measured: {pass}/{total} comparisons within tolerance");
}
