//! GourmetGram end-to-end: the course's running example as one program.
//!
//! Students play ML engineers at a food-photo-sharing startup. This
//! example drives the full operational loop the course teaches, on the
//! real substrates: train (distributed) → track → register → optimize →
//! serve (dynamic batching) → monitor → detect drift → retrain → canary →
//! promote/rollback.
//!
//! ```sh
//! cargo run --release --example gourmetgram
//! ```

use ml_ops_course::mlops::allreduce::ReduceAlgo;
use ml_ops_course::mlops::ddp::{train_ddp, DdpConfig};
use ml_ops_course::mlops::drift::{DriftDetector, DriftStatus};
use ml_ops_course::mlops::eval::{canary_analysis, evaluate, CanaryPolicy, CanaryVerdict};
use ml_ops_course::mlops::model::Dataset;
use ml_ops_course::mlops::monitoring::{evaluate_alerts, AlertRule, Cmp, MetricsStore};
use ml_ops_course::mlops::optimize::{model_bytes, QuantizedMlp};
use ml_ops_course::mlops::registry::{ModelRegistry, Stage};
use ml_ops_course::mlops::serving::{simulate, LoadSpec, ModelProfile, ServerConfig};
use ml_ops_course::mlops::tracking::{params_to_artifact, ExperimentTracker, RunStatus};
use std::collections::BTreeMap;

fn main() {
    let seed = 7;
    let tracker = ExperimentTracker::new();
    let mut registry = ModelRegistry::new();

    // ---- 1. Data: the "food-11" stand-in ---------------------------
    let data = Dataset::blobs(550, 8, 11, 0.6, seed);
    let (train, holdout) = data.split(0.8, seed + 1);
    println!(
        "GourmetGram food-11: {} train / {} holdout examples",
        train.len(),
        holdout.len()
    );

    // ---- 2. Distributed training (Unit 4), tracked (Unit 5) --------
    let run = tracker.start_run("gourmetgram");
    tracker.log_param(run, "workers", "4");
    tracker.log_param(run, "collective", "ring");
    let (mut model, report) = train_ddp(
        &DdpConfig {
            sizes: vec![8, 32, 11],
            workers: 4,
            epochs: 20,
            batch_size: 16,
            lr: 0.1,
            momentum: 0.9,
            algo: ReduceAlgo::Ring,
            seed,
        },
        &train,
    );
    for (epoch, &(loss, acc)) in report.history.iter().enumerate() {
        tracker.log_metric(run, "loss", epoch as u64, f64::from(loss));
        tracker.log_metric(run, "train_acc", epoch as u64, acc);
    }
    let eval_report = evaluate(&mut model, &holdout);
    tracker.log_metric(
        run,
        "holdout_acc",
        report.history.len() as u64,
        eval_report.accuracy,
    );
    tracker.log_artifact(run, "model.bin", params_to_artifact(&model.params_flat()));
    tracker.end_run(run, RunStatus::Finished);
    println!(
        "trained with 4-way DDP (replicas in sync: {}); holdout accuracy {:.3}, macro-F1 {:.3}",
        report.in_sync,
        eval_report.accuracy,
        eval_report.macro_f1()
    );

    // ---- 3. Register and stage (Unit 3) -----------------------------
    let mut metrics = BTreeMap::new();
    metrics.insert("holdout_acc".to_string(), eval_report.accuracy);
    let v1 = registry.register("food11", params_to_artifact(&model.params_flat()), metrics);
    registry
        .transition("food11", v1, Stage::Production)
        .expect("fresh registry");
    println!("registered food11 v{v1} → production");

    // ---- 4. Serving optimizations (Unit 6) --------------------------
    let quant = QuantizedMlp::from_model(&model);
    println!(
        "INT8 quantization: {}x smaller, accuracy {:.3} (fp32 {:.3})",
        model_bytes(&model) / quant.bytes(),
        quant.accuracy(&holdout),
        eval_report.accuracy
    );
    let load = LoadSpec {
        rps: 150.0,
        requests: 3000,
    };
    let baseline = simulate(
        ModelProfile::fp32_server_gpu(),
        ServerConfig::baseline(),
        load,
        seed,
    );
    let optimized = simulate(
        ModelProfile::int8_server_gpu(),
        ServerConfig {
            replicas: 2,
            max_batch: 8,
            max_queue_delay_ms: 5.0,
        },
        load,
        seed,
    );
    println!(
        "serving at 150 rps: baseline p95 {:.1} ms → int8+batching p95 {:.1} ms (mean batch {:.1})",
        baseline.p95_latency_ms, optimized.p95_latency_ms, optimized.mean_batch_size
    );

    // ---- 5. Monitoring + drift (Unit 7) ------------------------------
    let mut store = MetricsStore::new();
    for (i, _) in (0..200).enumerate() {
        store.record("latency_ms", i as f64 * 10.0, optimized.p50_latency_ms);
    }
    let alerts = evaluate_alerts(
        &store,
        &[AlertRule {
            name: "latency-slo".into(),
            metric: "latency_ms".into(),
            threshold: 100.0,
            cmp: Cmp::Above,
            window_ms: 500.0,
            min_samples: 5,
        }],
        1990.0,
    );
    println!("monitoring: {} alerts under healthy traffic", alerts.len());

    // Drift arrives: users start uploading different food.
    let drifted = data.shifted(2.0);
    let reference: Vec<f64> = (0..train.len())
        .map(|i| f64::from(train.x.get(i, 0)))
        .collect();
    let mut detector = DriftDetector::new(reference, 120, 0.01);
    let mut detected = None;
    for i in 0..drifted.len() {
        if let Some(r) = detector.push(f64::from(drifted.x.get(i, 0))) {
            if r.status == DriftStatus::Drift {
                detected = Some((i, r));
                break;
            }
        }
    }
    let (at, drift_report) = detected.expect("drift must be detected");
    println!(
        "drift detected after {at} requests (KS {:.3} > {:.3}, PSI {:.2})",
        drift_report.ks, drift_report.ks_critical, drift_report.psi
    );

    // ---- 6. Retrain on drifted data, canary, promote ---------------
    let (drift_train, drift_holdout) = drifted.split(0.8, seed + 2);
    let (mut model_v2, _) = train_ddp(
        &DdpConfig {
            sizes: vec![8, 32, 11],
            workers: 4,
            epochs: 20,
            batch_size: 16,
            lr: 0.1,
            momentum: 0.9,
            algo: ReduceAlgo::Ring,
            seed: seed + 3,
        },
        &drift_train,
    );
    let old_on_drifted = drift_holdout.accuracy(&mut model);
    let new_on_drifted = drift_holdout.accuracy(&mut model_v2);
    let mut metrics = BTreeMap::new();
    metrics.insert("holdout_acc".to_string(), new_on_drifted);
    let v2 = registry.register(
        "food11",
        params_to_artifact(&model_v2.params_flat()),
        metrics,
    );
    registry
        .transition("food11", v2, Stage::Canary)
        .expect("canary");
    let verdict = canary_analysis(
        &CanaryPolicy {
            max_latency_regression: 0.25,
            max_accuracy_drop: 0.02,
            min_samples: 10,
        },
        &vec![optimized.p50_latency_ms; 50],
        old_on_drifted,
        &vec![optimized.p50_latency_ms; 50],
        new_on_drifted,
    );
    println!(
        "retrained v{v2}: accuracy on drifted traffic {:.3} (old model: {:.3}); canary verdict {:?}",
        new_on_drifted, old_on_drifted, verdict
    );
    assert_eq!(verdict, CanaryVerdict::Promote);
    registry
        .transition("food11", v2, Stage::Production)
        .expect("promote");
    println!(
        "food11 v{} now in production; registry history has {} transitions",
        registry
            .in_stage("food11", Stage::Production)
            .expect("promoted")
            .version,
        registry.history().len()
    );
}
