//! Capacity planning for instructors: how do quota needs, GPU-slot
//! contention, and commercial cost scale with enrollment?
//!
//! §6 of the paper warns that commercial clouds are "risky and
//! potentially cost-prohibitive" for courses like this; this example
//! sweeps enrollment and reports what an instructor would need to
//! request (the paper's course negotiated 600 instances / 1,200 cores /
//! 2.5 TB RAM / 300 floating IPs for 191 students).
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use ml_ops_course::cohort::semester::{simulate_semester, SemesterConfig};
use ml_ops_course::metering::rollup::AssignmentRollup;
use ml_ops_course::pricing::estimate::price_lab_assignments;
use ml_ops_course::report::table::{fmt_num, fmt_usd, Table};
use ml_ops_course::testbed::quota::Quota;

fn main() {
    let mut table = Table::new(&[
        "Enrollment",
        "Peak instances",
        "Peak cores",
        "Quota denials",
        "Slot pushbacks",
        "Lab AWS cost",
        "Cost/student",
    ]);
    for enrollment in [48u32, 96, 191, 280] {
        let config = SemesterConfig {
            enrollment,
            weeks: 14,
            run_projects: false,
            vm_auto_terminate_after: None,
            faults: ml_ops_course::faults::FaultProfile::none(),
            shard_students: 191,
        };
        let outcome = simulate_semester(&config, 42);
        let rollup = AssignmentRollup::from_ledger(&outcome.ledger, enrollment as usize);
        let priced = price_lab_assignments(&rollup);
        table.row(&[
            enrollment.to_string(),
            fmt_num(outcome.ledger.peak_concurrent_instances() as f64, 0),
            fmt_num(outcome.ledger.peak_concurrent_cores() as f64, 0),
            outcome.quota_denials.to_string(),
            outcome.slot_pushbacks.to_string(),
            fmt_usd(priced.total.aws_usd),
            fmt_usd(priced.total.aws_per_student),
        ]);
    }
    println!("Lab-phase capacity and cost vs enrollment (seed 42):\n");
    println!("{}", table.render());

    let q = Quota::paper_course();
    println!(
        "Paper-course quota for reference: {} instances, {} cores, {} GB RAM, {} floating IPs.",
        q.instances, q.cores, q.ram_gb, q.floating_ips
    );
    println!(
        "The default per-project quota ({} instances, {} cores) would deadlock the course\n\
         in week 1 — which is why §4 describes negotiating the increase in advance.",
        Quota::chameleon_default().instances,
        Quota::chameleon_default().cores
    );
}
