//! Offline shim for `crossbeam`.
//!
//! Provides `crossbeam::channel` — multi-producer multi-consumer channels
//! with bounded backpressure and disconnect semantics — implemented over
//! `Mutex<VecDeque>` + two `Condvar`s. Not as fast as crossbeam's lock-free
//! queues, but semantically faithful for the workspace's pipeline-parallel
//! and streaming workloads.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        /// `None` = unbounded.
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        not_empty: Condvar,
        not_full: Condvar,
    }

    impl<T> Inner<T> {
        fn new(capacity: Option<usize>) -> Arc<Self> {
            Arc::new(Inner {
                queue: Mutex::new(VecDeque::new()),
                capacity,
                senders: AtomicUsize::new(1),
                receivers: AtomicUsize::new(1),
                not_empty: Condvar::new(),
                not_full: Condvar::new(),
            })
        }
    }

    /// Sending half; clone freely (multi-producer).
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half; clone freely (multi-consumer work-queue semantics).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// The channel is disconnected (all receivers dropped); payload
    /// returned.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like upstream crossbeam, Debug does not require `T: Debug` (the
    // payload is elided), so `.expect()` works for any payload type.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// The channel is empty and all senders dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Outcome of [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived before the deadline.
        Timeout,
        /// Empty and all senders dropped.
        Disconnected,
    }

    /// Outcome of [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Queue currently empty.
        Empty,
        /// Empty and all senders dropped.
        Disconnected,
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }
    impl<T> std::error::Error for SendError<T> {}
    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }
    impl std::error::Error for RecvError {}

    /// Unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Inner::new(None);
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    /// Bounded MPMC channel (`cap > 0`; rendezvous channels unsupported by
    /// the shim).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(
            cap > 0,
            "crossbeam shim: zero-capacity (rendezvous) channels unsupported"
        );
        let inner = Inner::new(Some(cap));
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Send, blocking while the queue is at capacity. Errors if all
        /// receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let inner = &self.inner;
            let mut q = inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if inner.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(value));
                }
                match inner.capacity {
                    Some(cap) if q.len() >= cap => {
                        q = inner.not_full.wait(q).unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break,
                }
            }
            q.push_back(value);
            drop(q);
            inner.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receive, blocking while empty. Errors once empty with all
        /// senders dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let inner = &self.inner;
            let mut q = inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    inner.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = inner.not_empty.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let inner = &self.inner;
            let mut q = inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    inner.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let (guard, res) = inner
                    .not_empty
                    .wait_timeout(q, timeout)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
                if res.timed_out() {
                    return match q.pop_front() {
                        Some(v) => {
                            drop(q);
                            inner.not_full.notify_one();
                            Ok(v)
                        }
                        None if inner.senders.load(Ordering::SeqCst) == 0 => {
                            Err(RecvTimeoutError::Disconnected)
                        }
                        None => Err(RecvTimeoutError::Timeout),
                    };
                }
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let inner = &self.inner;
            let mut q = inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = q.pop_front() {
                drop(q);
                inner.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking iterator draining the channel until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }
    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                inner: self.inner.clone(),
            }
        }
    }
    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }
    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake all blocked receivers so they observe
                // the disconnect.
                self.inner.not_empty.notify_all();
            }
        }
    }
    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.inner.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.inner.not_full.notify_all();
            }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }
    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn mpmc_drains_everything_once() {
            let (tx, rx) = bounded::<u32>(4);
            let total: u32 = std::thread::scope(|s| {
                for p in 0..3u32 {
                    let tx = tx.clone();
                    s.spawn(move || {
                        for i in 0..100 {
                            tx.send(p * 1000 + i).unwrap();
                        }
                    });
                }
                drop(tx);
                let consumers: Vec<_> = (0..2)
                    .map(|_| {
                        let rx = rx.clone();
                        s.spawn(move || {
                            let mut n = 0u32;
                            while rx.recv().is_ok() {
                                n += 1;
                            }
                            n
                        })
                    })
                    .collect();
                drop(rx);
                consumers.into_iter().map(|h| h.join().unwrap()).sum()
            });
            assert_eq!(total, 300);
        }

        #[test]
        fn recv_errors_after_senders_gone() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_receivers_gone() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }
    }
}
