//! Offline shim for `rand`.
//!
//! The workspace's determinism contract (DESIGN.md §7, enforced by
//! `opml-detlint`) forbids ambient-entropy RNGs — all simulation code uses
//! `opml_simkernel::rng::Rng`, seeded per entity with SplitMix64. This
//! placeholder exists only so manifests declaring a `rand` dependency
//! resolve offline; it deliberately provides **no** `thread_rng()` /
//! `rng()` entry points (both are detlint rule `DL001` violations).
//!
//! A seedable generator is provided for any future test scaffolding that
//! genuinely needs the `rand` crate name.

/// Minimal explicitly-seeded generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Construct from an explicit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SmallRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}
