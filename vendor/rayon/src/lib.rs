//! Offline shim for `rayon`.
//!
//! Implements the subset of rayon the workspace uses — `into_par_iter` on
//! ranges, `par_iter` on slices, `par_chunks_mut`, with `map` / `enumerate`
//! / `collect` / `for_each` — over `std::thread::scope`. Work is split into
//! contiguous index chunks, one per worker, and results are reassembled
//! **in index order**, so output is identical at any thread count (the
//! property `run-experiments verify-determinism` checks end to end).
//!
//! Thread count resolution order:
//! 1. an active [`ThreadPool::install`] override (innermost wins),
//! 2. the `RAYON_NUM_THREADS` environment variable,
//! 3. `std::thread::available_parallelism()`.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Process-wide override installed by [`ThreadPool::install`] /
/// [`ThreadPoolBuilder::build_global`]. Zero means "no override".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Attribution hooks bracketing the shim's own dispatch machinery
/// (chunk bookkeeping, scoped-thread spawn/join, result reassembly).
/// See [`install_pool_hooks`].
#[derive(Clone, Copy)]
struct PoolHooks {
    enter: fn() -> usize,
    exit: fn(usize),
}

static POOL_HOOKS: OnceLock<PoolHooks> = OnceLock::new();

/// Install process-wide pool-attribution hooks (first caller wins;
/// later installs are ignored).
///
/// `enter` is called on whichever thread is about to run pool
/// machinery — the dispatching caller *and* each scoped worker — and
/// returns an opaque token; `exit` receives that token when the
/// machinery is done (also on unwind). A profiler uses the pair to
/// re-point its thread-local attribution at a dedicated pool phase, so
/// the shim's thread-count-dependent bookkeeping allocations (worker
/// stacks, per-worker result vectors, join/reassembly buffers) never
/// land in user phases. User code that sets its own phase inside the
/// parallel closure overrides the pool phase for its extent, exactly
/// as it would any other enclosing phase.
///
/// Hooks must be allocation-free and panic-free: they run on the
/// dispatch hot path and inside `Drop`.
pub fn install_pool_hooks(enter: fn() -> usize, exit: fn(usize)) {
    let _ = POOL_HOOKS.set(PoolHooks { enter, exit });
}

/// RAII bracket around pool machinery; no-op until hooks are installed.
struct PoolScope(Option<usize>);

impl PoolScope {
    fn enter() -> Self {
        PoolScope(POOL_HOOKS.get().map(|h| (h.enter)()))
    }
}

impl Drop for PoolScope {
    fn drop(&mut self) {
        if let (Some(token), Some(h)) = (self.0.take(), POOL_HOOKS.get()) {
            (h.exit)(token);
        }
    }
}

/// Number of worker threads parallel operations will use right now.
pub fn current_num_threads() -> usize {
    let over = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if over > 0 {
        return over;
    }
    if let Ok(s) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Builder mirroring rayon's, so callers can pin a thread count.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

/// Error type for API parity; building the shim pool cannot fail.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("rayon shim: thread pool build error")
    }
}
impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// New builder with default (auto) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pin the number of worker threads (0 = auto).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Build a pool handle.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or(0),
        })
    }

    /// Install the thread count process-wide.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        THREAD_OVERRIDE.store(self.num_threads.unwrap_or(0), Ordering::Relaxed);
        Ok(())
    }
}

/// A handle carrying a pinned thread count. The shim spawns scoped threads
/// per operation rather than keeping a pool alive; `install` scopes the
/// thread-count override for the duration of the closure.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread count active (restored afterwards,
    /// also on panic).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                THREAD_OVERRIDE.store(self.0, Ordering::Relaxed);
            }
        }
        let _restore = Restore(THREAD_OVERRIDE.swap(self.num_threads, Ordering::Relaxed));
        f()
    }

    /// The pinned thread count (0 = auto).
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            current_num_threads()
        }
    }
}

/// Run `f(i)` for `i in 0..n` across worker threads; results in index order.
fn run_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let nt = current_num_threads().min(n.max(1));
    // The whole dispatch — including the inline path's collect buffer —
    // runs under the pool-attribution bracket, so buffer growth that
    // depends on chunking (and therefore on thread count) is never
    // charged to a user phase. The closures themselves set their own
    // phases where attribution matters.
    let _pool = PoolScope::enter();
    if nt <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(nt);
    let f = &f;
    let mut parts: Vec<Vec<R>> = Vec::with_capacity(nt);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..nt)
            .map(|t| {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                s.spawn(move || {
                    // Fresh thread: bracket it too, so per-worker
                    // result buffers land in the pool phase.
                    let _pool = PoolScope::enter();
                    (lo..hi).map(f).collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            parts.push(h.join().expect("rayon shim worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(n);
    for p in parts {
        out.extend(p);
    }
    out
}

// ---------------------------------------------------------------------------
// Indexed parallel-iterator model
// ---------------------------------------------------------------------------

/// Internal random-access source: every shim iterator is index-addressable,
/// which is what makes collection order-stable by construction.
pub trait IndexedParallelSource: Sync + Sized {
    /// Element type.
    type Item: Send;
    /// Number of elements.
    fn par_len(&self) -> usize;
    /// Fetch element `i`. Must be safe to call concurrently.
    fn par_get(&self, i: usize) -> Self::Item;
}

/// Consumer-side adapters and terminals, blanket-implemented for every
/// source. This mirrors rayon's `ParallelIterator`.
pub trait ParallelIterator: IndexedParallelSource {
    /// Map each element.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Pair each element with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// No-op splitting hint, for API parity.
    fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// Run a side-effecting closure for every element.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        run_indexed(self.par_len(), |i| f(self.par_get(i)));
    }

    /// Collect into a container, preserving index order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_vec(run_indexed(self.par_len(), |i| self.par_get(i)))
    }

    /// Sum elements. The reduction itself runs in index order, so float
    /// sums are reproducible at any thread count.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        run_indexed(self.par_len(), |i| self.par_get(i))
            .into_iter()
            .sum()
    }

    /// Sequential-order fold. **Not** rayon's tree reduction: the shim
    /// reduces in index order, trading parallel speedup of the reduce step
    /// for bit-stable results.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    {
        run_indexed(self.par_len(), |i| self.par_get(i))
            .into_iter()
            .fold(identity(), op)
    }
}

impl<T: IndexedParallelSource> ParallelIterator for T {}

/// Containers collectible from an index-ordered element vector.
pub trait FromParallelIterator<T> {
    /// Build from elements already in index order.
    fn from_par_vec(v: Vec<T>) -> Self;
}
impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_par_vec(v: Vec<T>) -> Self {
        v
    }
}
impl FromParallelIterator<String> for String {
    fn from_par_vec(v: Vec<String>) -> Self {
        v.concat()
    }
}

/// `map` adapter.
pub struct Map<S, F> {
    base: S,
    f: F,
}
impl<S, R, F> IndexedParallelSource for Map<S, F>
where
    S: IndexedParallelSource,
    R: Send,
    F: Fn(S::Item) -> R + Sync,
{
    type Item = R;
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn par_get(&self, i: usize) -> R {
        (self.f)(self.base.par_get(i))
    }
}

/// `enumerate` adapter.
pub struct Enumerate<S> {
    base: S,
}
impl<S: IndexedParallelSource> IndexedParallelSource for Enumerate<S> {
    type Item = (usize, S::Item);
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn par_get(&self, i: usize) -> (usize, S::Item) {
        (i, self.base.par_get(i))
    }
}

// --- sources ---------------------------------------------------------------

/// Parallel integer range.
pub struct ParRange<T> {
    start: T,
    len: usize,
}
macro_rules! impl_par_range {
    ($($t:ty),*) => {$(
        impl IndexedParallelSource for ParRange<$t> {
            type Item = $t;
            fn par_len(&self) -> usize { self.len }
            fn par_get(&self, i: usize) -> $t { self.start + i as $t }
        }
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = ParRange<$t>;
            fn into_par_iter(self) -> ParRange<$t> {
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                ParRange { start: self.start, len }
            }
        }
    )*};
}
impl_par_range!(usize, u64, u32, i64, i32);

/// Parallel shared-slice iterator.
pub struct ParSlice<'a, T: Sync> {
    slice: &'a [T],
}
impl<'a, T: Sync> IndexedParallelSource for ParSlice<'a, T> {
    type Item = &'a T;
    fn par_len(&self) -> usize {
        self.slice.len()
    }
    fn par_get(&self, i: usize) -> &'a T {
        &self.slice[i]
    }
}

/// Owned-`Vec` source (elements cloned into workers; rayon moves them, but
/// the shim keeps random access, which the workspace's uses never notice).
pub struct ParVec<T: Clone + Sync> {
    items: Vec<T>,
}
impl<T: Clone + Send + Sync> IndexedParallelSource for ParVec<T> {
    type Item = T;
    fn par_len(&self) -> usize {
        self.items.len()
    }
    fn par_get(&self, i: usize) -> T {
        self.items[i].clone()
    }
}

/// Conversion into a parallel iterator (rayon API).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Clone + Send + Sync> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParVec<T>;
    fn into_par_iter(self) -> ParVec<T> {
        ParVec { items: self }
    }
}
impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = ParSlice<'a, T>;
    fn into_par_iter(self) -> ParSlice<'a, T> {
        ParSlice { slice: self }
    }
}
impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = ParSlice<'a, T>;
    fn into_par_iter(self) -> ParSlice<'a, T> {
        ParSlice { slice: self }
    }
}

/// `par_iter` on slices (rayon's `IntoParallelRefIterator` spelling).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> ParSlice<'_, T>;
}
impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParSlice<'_, T> {
        ParSlice { slice: self }
    }
}

/// `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Disjoint mutable chunks of `chunk_size` (last may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}
impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "par_chunks_mut: chunk size must be > 0");
        ParChunksMut {
            chunks: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// Mutable-chunk iterator. Chunks are disjoint `&mut [T]`, so they can be
/// dispatched to scoped threads directly; `enumerate` preserves the chunk
/// index for order-stable writes.
pub struct ParChunksMut<'a, T: Send> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair each chunk with its index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate {
            chunks: self.chunks,
        }
    }

    /// Run `f` on every chunk.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, c)| f(c));
    }
}

/// Enumerated mutable-chunk iterator.
pub struct ParChunksMutEnumerate<'a, T: Send> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
    /// Run `f` on every `(index, chunk)` pair across worker threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a mut [T])) + Sync,
    {
        let _pool = PoolScope::enter();
        let indexed: Vec<(usize, &'a mut [T])> = self.chunks.into_iter().enumerate().collect();
        let n = indexed.len();
        let nt = current_num_threads().min(n.max(1));
        if nt <= 1 || n <= 1 {
            for pair in indexed {
                f(pair);
            }
            return;
        }
        let f = &f;
        let per = n.div_ceil(nt);
        let mut groups: Vec<Vec<(usize, &'a mut [T])>> = Vec::with_capacity(nt);
        let mut rest = indexed;
        while !rest.is_empty() {
            let take = per.min(rest.len());
            let tail = rest.split_off(take);
            groups.push(std::mem::replace(&mut rest, tail));
        }
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for group in groups {
                handles.push(s.spawn(move || {
                    let _pool = PoolScope::enter();
                    for pair in group {
                        f(pair);
                    }
                }));
            }
            for h in handles {
                h.join().expect("rayon shim worker panicked");
            }
        });
    }
}

/// Rayon-style prelude.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, ParallelIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn range_map_collect_is_index_ordered() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn slice_enumerate_map() {
        let items = vec![5u64, 6, 7];
        let out: Vec<u64> = items
            .par_iter()
            .enumerate()
            .map(|(i, &x)| x + i as u64)
            .collect();
        assert_eq!(out, vec![5, 7, 9]);
    }

    #[test]
    fn chunks_mut_writes_every_chunk() {
        let mut data = vec![0u32; 10];
        data.par_chunks_mut(3).enumerate().for_each(|(idx, chunk)| {
            for v in chunk.iter_mut() {
                *v = idx as u32 + 1;
            }
        });
        assert_eq!(data, vec![1, 1, 1, 2, 2, 2, 3, 3, 3, 4]);
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
    }

    #[test]
    fn same_result_at_any_thread_count() {
        let compute = || -> Vec<f64> {
            (0..257usize)
                .into_par_iter()
                .map(|i| (i as f64).sqrt())
                .collect()
        };
        let one = ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(compute);
        let eight = ThreadPoolBuilder::new()
            .num_threads(8)
            .build()
            .unwrap()
            .install(compute);
        assert_eq!(one, eight);
    }
}
