//! Offline shim for `parking_lot`.
//!
//! Thin wrappers over `std::sync` primitives with parking_lot's panic-free
//! API (no lock poisoning: a panicked holder just releases the lock). Guard
//! types are the std guards, which deref identically.

/// Mutual exclusion lock (non-poisoning facade over `std::sync::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock (non-poisoning facade over `std::sync::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}
