//! Offline shim for `serde`.
//!
//! The build container cannot reach crates.io, so the workspace vendors a
//! minimal serde facade. Instead of real serde's visitor-based data model,
//! serialization funnels through one JSON-shaped tree, [`Node`]; the derive
//! macros (see `vendor/serde_derive`) generate `to_node` implementations,
//! and the vendored `serde_json` renders a `Node` as JSON text.
//!
//! Determinism note: map-like containers serialize in **sorted key order**
//! (`HashMap` keys are sorted before emission), so serialized output never
//! depends on hash iteration order. This mirrors the workspace-wide
//! determinism contract that `opml-detlint` enforces statically.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model: a JSON-shaped tree.
///
/// `Map` preserves insertion order (derives emit fields in declaration
/// order, like real serde_json with `preserve_order`).
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// JSON null.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Node>),
    /// Object, in emission order.
    Map(Vec<(String, Node)>),
}

/// Types that can serialize themselves into the [`Node`] data model.
pub trait Serialize {
    /// Convert to the JSON-shaped data model.
    fn to_node(&self) -> Node;
}

/// Marker trait emitted by `#[derive(Deserialize)]`.
///
/// Nothing in the workspace deserializes, so the shim carries no methods;
/// the derive exists so `#[derive(Serialize, Deserialize)]` lines compile
/// unchanged.
pub trait Deserialize {}

/// Module alias matching real serde's layout (`serde::ser::Serialize`).
pub mod ser {
    pub use super::{Node, Serialize};
}

// --- primitives -----------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_node(&self) -> Node { Node::U64(*self as u64) }
        }
    )*};
}
macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_node(&self) -> Node { Node::I64(*self as i64) }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_node(&self) -> Node {
        Node::F64(f64::from(*self))
    }
}
impl Serialize for f64 {
    fn to_node(&self) -> Node {
        Node::F64(*self)
    }
}
impl Serialize for bool {
    fn to_node(&self) -> Node {
        Node::Bool(*self)
    }
}
impl Serialize for char {
    fn to_node(&self) -> Node {
        Node::Str(self.to_string())
    }
}
impl Serialize for String {
    fn to_node(&self) -> Node {
        Node::Str(self.clone())
    }
}
impl Serialize for str {
    fn to_node(&self) -> Node {
        Node::Str(self.to_string())
    }
}
impl Serialize for () {
    fn to_node(&self) -> Node {
        Node::Null
    }
}

// --- containers -----------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_node(&self) -> Node {
        (**self).to_node()
    }
}
impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn to_node(&self) -> Node {
        (**self).to_node()
    }
}
impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_node(&self) -> Node {
        (**self).to_node()
    }
}
impl<T: Serialize> Serialize for Option<T> {
    fn to_node(&self) -> Node {
        match self {
            Some(v) => v.to_node(),
            None => Node::Null,
        }
    }
}
impl<T: Serialize> Serialize for Vec<T> {
    fn to_node(&self) -> Node {
        Node::Seq(self.iter().map(Serialize::to_node).collect())
    }
}
impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_node(&self) -> Node {
        Node::Seq(self.iter().map(Serialize::to_node).collect())
    }
}
impl<T: Serialize> Serialize for [T] {
    fn to_node(&self) -> Node {
        Node::Seq(self.iter().map(Serialize::to_node).collect())
    }
}
impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_node(&self) -> Node {
        Node::Seq(self.iter().map(Serialize::to_node).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_node(&self) -> Node {
                Node::Seq(vec![$(self.$n.to_node()),+])
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Types usable as JSON object keys (rendered as strings, like serde_json).
pub trait MapKey {
    /// Render the key.
    fn to_key(&self) -> String;
}
macro_rules! impl_mapkey_display {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String { self.to_string() }
        }
    )*};
}
impl_mapkey_display!(String, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, char);
impl MapKey for str {
    fn to_key(&self) -> String {
        self.to_string()
    }
}
impl<T: MapKey + ?Sized> MapKey for &T {
    fn to_key(&self) -> String {
        (**self).to_key()
    }
}

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_node(&self) -> Node {
        Node::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_node()))
                .collect(),
        )
    }
}
impl<K: MapKey + Ord, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_node(&self) -> Node {
        // Sort keys so hash iteration order never leaks into output.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Node::Map(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_key(), v.to_node()))
                .collect(),
        )
    }
}
impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_node(&self) -> Node {
        Node::Seq(self.iter().map(Serialize::to_node).collect())
    }
}
impl<T: Serialize + Ord, S> Serialize for HashSet<T, S> {
    fn to_node(&self) -> Node {
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Node::Seq(items.into_iter().map(|v| v.to_node()).collect())
    }
}

impl Serialize for Node {
    fn to_node(&self) -> Node {
        self.clone()
    }
}
