//! Offline shim for `serde_derive`.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! a minimal serde facade (see `vendor/serde`). This crate provides the
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for that facade
//! without `syn`/`quote`: the input item is parsed directly from the
//! `proc_macro` token stream and the impl is emitted as a string.
//!
//! Supported shapes — everything the workspace actually derives on:
//! * structs with named fields (honouring `#[serde(skip)]`),
//! * tuple structs (single-field newtypes serialize transparently),
//! * unit structs,
//! * enums with unit, tuple, and struct variants (externally tagged, like
//!   real serde).
//!
//! Generic types are intentionally rejected with a compile error: the
//! workspace has none, and silently mis-handling them would be worse.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed field: name (or tuple index) plus whether `#[serde(skip)]` was
/// present.
struct Field {
    name: String,
    skip: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Item {
    NamedStruct(String, Vec<Field>),
    TupleStruct(String, usize),
    UnitStruct(String),
    Enum(String, Vec<Variant>),
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .expect("serde_derive: generated code parses"),
        Err(e) => error(&e),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => {
            let name = match &item {
                Item::NamedStruct(n, _)
                | Item::TupleStruct(n, _)
                | Item::UnitStruct(n)
                | Item::Enum(n, _) => n,
            };
            // Nothing in the workspace deserializes; the impl is a marker.
            format!("impl ::serde::Deserialize for {name} {{}}")
                .parse()
                .expect("serde_derive: generated code parses")
        }
        Err(e) => error(&e),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("error tokens parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs_and_vis(&toks, &mut i);
    let kw = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive does not support generic type `{name}`"
            ));
        }
    }
    match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::NamedStruct(name, parse_named_fields(g.stream())?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::TupleStruct(name, count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct(name)),
            other => Err(format!("unexpected struct body: {other:?}")),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::Enum(name, parse_variants(g.stream())?))
            }
            other => Err(format!("unexpected enum body: {other:?}")),
        },
        other => Err(format!("expected `struct` or `enum`, got `{other}`")),
    }
}

/// Advance past outer attributes (`#[...]`) and visibility (`pub`,
/// `pub(...)`).
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            _ => break,
        }
    }
}

/// Does an attribute group (the `[...]` part) spell `serde(skip)` or
/// `serde(skip, ...)`?
fn attr_is_serde_skip(group: &TokenStream) -> bool {
    let toks: Vec<TokenTree> = group.clone().into_iter().collect();
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            args.stream().into_iter().any(|t| match t {
                TokenTree::Ident(id) => id.to_string() == "skip",
                _ => false,
            })
        }
        _ => false,
    }
}

/// Parse `name: Type, ...` named-field lists, tracking `#[serde(skip)]`.
fn parse_named_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        // Attributes.
        let mut skip = false;
        loop {
            match toks.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
                        if attr_is_serde_skip(&g.stream()) {
                            skip = true;
                        }
                    }
                    i += 2;
                }
                _ => break,
            }
        }
        // Visibility.
        if let Some(TokenTree::Ident(id)) = toks.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, got {other:?}")),
        };
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, skip });
    }
    Ok(fields)
}

/// Count fields of a tuple struct / tuple variant: commas at depth 0, plus
/// one (ignoring a trailing comma).
fn count_tuple_fields(body: TokenStream) -> usize {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut angle = 0i32;
    let mut count = 1usize;
    let mut trailing_comma = false;
    for t in &toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle -= 1;
                trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                trailing_comma = true;
            }
            _ => trailing_comma = false,
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        // Attributes on the variant.
        while let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == '#' {
                i += 2;
            } else {
                break;
            }
        }
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        // Optional explicit discriminant: `= <expr>` until comma at depth 0.
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == '=' {
                i += 1;
                let mut angle = 0i32;
                while i < toks.len() {
                    match &toks[i] {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                        _ => {}
                    }
                    i += 1;
                }
            }
        }
        // The comma between variants.
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct(name, fields) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "m.push(({:?}.to_string(), ::serde::Serialize::to_node(&self.{})));",
                    f.name, f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_node(&self) -> ::serde::Node {{\n\
                 let mut m: Vec<(String, ::serde::Node)> = Vec::new();\n\
                 {pushes}\n\
                 ::serde::Node::Map(m)\n}}\n}}"
            )
        }
        Item::TupleStruct(name, 1) => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_node(&self) -> ::serde::Node {{ ::serde::Serialize::to_node(&self.0) }}\n}}"
        ),
        Item::TupleStruct(name, n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_node(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_node(&self) -> ::serde::Node {{ ::serde::Node::Seq(vec![{}]) }}\n}}",
                items.join(", ")
            )
        }
        Item::UnitStruct(name) => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_node(&self) -> ::serde::Node {{ ::serde::Node::Null }}\n}}"
        ),
        Item::Enum(name, variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Node::Str({vn:?}.to_string()),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(x0) => ::serde::Node::Map(vec![({vn:?}.to_string(), \
                         ::serde::Serialize::to_node(x0))]),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let nodes: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_node({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Node::Map(vec![({vn:?}.to_string(), \
                             ::serde::Node::Seq(vec![{}]))]),\n",
                            binds.join(", "),
                            nodes.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
                        let all_binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let pairs: Vec<String> = live
                            .iter()
                            .map(|f| {
                                format!(
                                    "({:?}.to_string(), ::serde::Serialize::to_node({}))",
                                    f.name, f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Node::Map(vec![({vn:?}.to_string(), \
                             ::serde::Node::Map(vec![{}]))]),\n",
                            all_binds.join(", "),
                            pairs.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_node(&self) -> ::serde::Node {{\n\
                 #[allow(unused_variables)]\n\
                 match self {{\n{arms}}}\n}}\n}}"
            )
        }
    }
}
