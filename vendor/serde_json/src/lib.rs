//! Offline shim for `serde_json`.
//!
//! Renders the vendored serde facade's [`Value`] tree as JSON text. Output
//! is deterministic: field order follows declaration order, map keys are
//! emitted sorted (see `vendor/serde`), and number formatting uses Rust's
//! shortest-roundtrip float printing.

use serde::Serialize;

/// JSON value — the same tree the serde shim serializes into.
pub type Value = serde::Node;

/// Error type for API parity; this shim's serialization cannot fail.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("serde_json shim error")
    }
}
impl std::error::Error for Error {}

/// Convert any serializable value to a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_node()
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_node(), None, 0);
    Ok(out)
}

/// Serialize to pretty JSON (2-space indent, like real serde_json).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_node(), Some(2), 0);
    Ok(out)
}

/// Build a [`Value`] in place.
///
/// Supports the subset the workspace uses: `null`, object literals with
/// string-literal keys, array literals, and arbitrary serializable
/// expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Seq(vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Map(vec![
            $( (($key).to_string(), $crate::to_value(&$value)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{}` on f64 is shortest-roundtrip and locale-independent;
                // keep integral floats JSON-float-shaped like serde_json.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&x.to_string());
                }
            } else {
                // serde_json rejects non-finite floats; emitting null keeps
                // the shim infallible while staying valid JSON.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_shapes() {
        let v = Value::Map(vec![
            ("a\"b".to_string(), Value::Str("x\ny".to_string())),
            ("n".to_string(), Value::F64(2.0)),
            (
                "seq".to_string(),
                Value::Seq(vec![Value::U64(1), Value::Null]),
            ),
        ]);
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"a\"b":"x\ny","n":2.0,"seq":[1,null]}"#
        );
    }

    #[test]
    fn pretty_indents() {
        let v = json!({ "k": 1u64 });
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"k\": 1\n}");
    }
}
