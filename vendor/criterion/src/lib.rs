//! Offline shim for `criterion`.
//!
//! Compiles and runs the workspace's `harness = false` benches without
//! crates.io access. Measurement is intentionally simple: each benchmark
//! runs a fixed warm-up plus `sample_size` timed samples and prints the
//! median per-iteration time. No statistics, plots, or baselines.
//!
//! Wall-clock use (`std::time::Instant`) is confined to this vendored
//! crate; workspace simulation code stays on simulated time per the
//! determinism contract (`vendor/` is outside `opml-detlint`'s scan scope
//! for exactly this reason).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark context handed to `criterion_group!` targets.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { criterion: self }
    }

    /// Benchmark a single function.
    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        run_one(&id.to_string(), self.sample_size, &mut f);
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Record the work per iteration (printed, not analyzed).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        match t {
            Throughput::Bytes(b) => println!("  throughput: {b} bytes/iter"),
            Throughput::Elements(e) => println!("  throughput: {e} elements/iter"),
        }
        self
    }

    /// Benchmark a function within the group.
    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        run_one(&id.to_string(), self.criterion.sample_size, &mut f);
    }

    /// Benchmark a function with an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_one(&id.to_string(), self.criterion.sample_size, &mut |b| {
            f(b, input)
        });
    }

    /// Finish the group (printing only).
    pub fn finish(self) {}
}

/// Identifier of one parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// `function/parameter` id.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }

    /// Id from a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Declared per-iteration work, for throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Batch sizing hint for `iter_batched` (accepted, not used by the shim).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Input of one batch per sample.
    PerIteration,
}

/// Timing driver passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `f` once per sample.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        black_box(f());
        self.samples.push(start.elapsed());
    }

    /// Time `routine` on a fresh `setup()` value per sample, excluding
    /// setup time.
    pub fn iter_batched<S, R>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.samples.push(start.elapsed());
    }
}

fn run_one(id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::default();
    // Warm-up sample, discarded.
    f(&mut b);
    b.samples.clear();
    for _ in 0..samples {
        f(&mut b);
    }
    b.samples.sort_unstable();
    let median = b
        .samples
        .get(b.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    println!("  bench {id}: median {median:?} over {samples} samples");
}

/// Group benchmark targets into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
