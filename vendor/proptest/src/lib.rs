//! Offline shim for `proptest`.
//!
//! A deterministic property-testing harness covering the API surface the
//! workspace's `proptests.rs` files use: the `proptest!` macro, range and
//! `any::<T>()` strategies, tuple strategies, `prop::collection::vec`,
//! string strategies from a regex subset, `.prop_map`, and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, on purpose:
//! * **No shrinking** — a failing case reports its inputs and case number.
//! * **Deterministic seeding** — the RNG for case `k` of test `t` is
//!   derived from `(fnv64(t), k)` with SplitMix64, never from wall-clock
//!   or OS entropy, matching the workspace determinism contract that
//!   `opml-detlint` enforces.
//! * Default case count is 64 (real proptest: 256) to keep the tier-1
//!   suite fast on small containers; `ProptestConfig::with_cases`
//!   overrides per block.

use std::ops::Range;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator driving every strategy (SplitMix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one test case, derived from the test name and case index.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n > 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift; bias is negligible for test generation.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of values for one test argument.
pub trait Strategy {
    /// Generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    base: S,
    f: F,
}
impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// Always yields a clone of one value.
pub struct Just<T: Clone>(pub T);
impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}
impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// --- any::<T>() ------------------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t { rng.next_u64() as $t }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning many magnitudes.
        let mag = (rng.unit_f64() * 60.0) - 30.0;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * rng.unit_f64() * mag.exp2()
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);
impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

// --- collections -----------------------------------------------------------

/// Length bound for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}
impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}
impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector of values from `element`, length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// --- string strategies from a regex subset ---------------------------------

/// `&str` literals act as regex-subset string strategies, like real
/// proptest. Supported: literals, `[a-z0-9]` classes, `(a|b|c)` groups,
/// and `{n}` / `{m,n}` / `?` / `*` / `+` repetition (unbounded repeats are
/// capped at 8).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let ast = regex_lite::parse(self);
        let mut out = String::new();
        regex_lite::render(&ast, rng, &mut out);
        out
    }
}

mod regex_lite {
    use super::TestRng;

    pub enum Node {
        /// Sequence of atoms.
        Concat(Vec<Node>),
        /// Alternation.
        Alt(Vec<Node>),
        /// Literal char.
        Lit(char),
        /// Character class alternatives.
        Class(Vec<(char, char)>),
        /// Bounded repetition of an atom.
        Repeat(Box<Node>, usize, usize),
    }

    pub fn parse(pattern: &str) -> Node {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0usize;
        let node = parse_alt(&chars, &mut pos);
        assert!(
            pos >= chars.len(),
            "proptest shim: unsupported regex pattern {pattern:?} (stopped at {pos})"
        );
        node
    }

    fn parse_alt(chars: &[char], pos: &mut usize) -> Node {
        let mut branches = vec![parse_concat(chars, pos)];
        while *pos < chars.len() && chars[*pos] == '|' {
            *pos += 1;
            branches.push(parse_concat(chars, pos));
        }
        if branches.len() == 1 {
            branches.pop().expect("non-empty")
        } else {
            Node::Alt(branches)
        }
    }

    fn parse_concat(chars: &[char], pos: &mut usize) -> Node {
        let mut atoms = Vec::new();
        while *pos < chars.len() && chars[*pos] != '|' && chars[*pos] != ')' {
            let atom = parse_atom(chars, pos);
            atoms.push(parse_repeat(atom, chars, pos));
        }
        Node::Concat(atoms)
    }

    fn parse_atom(chars: &[char], pos: &mut usize) -> Node {
        match chars[*pos] {
            '(' => {
                *pos += 1;
                let inner = parse_alt(chars, pos);
                assert!(
                    *pos < chars.len() && chars[*pos] == ')',
                    "proptest shim: unbalanced group in regex"
                );
                *pos += 1;
                inner
            }
            '[' => {
                *pos += 1;
                let mut ranges = Vec::new();
                while *pos < chars.len() && chars[*pos] != ']' {
                    let lo = chars[*pos];
                    *pos += 1;
                    if *pos + 1 < chars.len() && chars[*pos] == '-' && chars[*pos + 1] != ']' {
                        let hi = chars[*pos + 1];
                        *pos += 2;
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                assert!(*pos < chars.len(), "proptest shim: unterminated class");
                *pos += 1; // ']'
                Node::Class(ranges)
            }
            '\\' => {
                *pos += 1;
                let c = chars[*pos];
                *pos += 1;
                match c {
                    'd' => Node::Class(vec![('0', '9')]),
                    'w' => Node::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                    other => Node::Lit(other),
                }
            }
            c => {
                *pos += 1;
                Node::Lit(c)
            }
        }
    }

    fn parse_repeat(atom: Node, chars: &[char], pos: &mut usize) -> Node {
        if *pos >= chars.len() {
            return atom;
        }
        match chars[*pos] {
            '?' => {
                *pos += 1;
                Node::Repeat(Box::new(atom), 0, 1)
            }
            '*' => {
                *pos += 1;
                Node::Repeat(Box::new(atom), 0, 8)
            }
            '+' => {
                *pos += 1;
                Node::Repeat(Box::new(atom), 1, 8)
            }
            '{' => {
                *pos += 1;
                let mut lo = 0usize;
                while chars[*pos].is_ascii_digit() {
                    lo = lo * 10 + chars[*pos].to_digit(10).expect("digit") as usize;
                    *pos += 1;
                }
                let hi = if chars[*pos] == ',' {
                    *pos += 1;
                    let mut hi = 0usize;
                    while chars[*pos].is_ascii_digit() {
                        hi = hi * 10 + chars[*pos].to_digit(10).expect("digit") as usize;
                        *pos += 1;
                    }
                    hi
                } else {
                    lo
                };
                assert!(chars[*pos] == '}', "proptest shim: unterminated repetition");
                *pos += 1;
                Node::Repeat(Box::new(atom), lo, hi)
            }
            _ => atom,
        }
    }

    pub fn render(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Concat(items) => {
                for item in items {
                    render(item, rng, out);
                }
            }
            Node::Alt(branches) => {
                let pick = rng.below(branches.len() as u64) as usize;
                render(&branches[pick], rng, out);
            }
            Node::Lit(c) => out.push(*c),
            Node::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|&(lo, hi)| (hi as u64) - (lo as u64) + 1)
                    .sum();
                let mut pick = rng.below(total.max(1));
                for &(lo, hi) in ranges {
                    let span = (hi as u64) - (lo as u64) + 1;
                    if pick < span {
                        out.push(char::from_u32(lo as u32 + pick as u32).expect("valid char"));
                        return;
                    }
                    pick -= span;
                }
            }
            Node::Repeat(inner, lo, hi) => {
                let n = lo + rng.below((hi - lo + 1) as u64) as usize;
                for _ in 0..n {
                    render(inner, rng, out);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Config, errors, macros
// ---------------------------------------------------------------------------

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}
impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}
impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Failure raised by `prop_assert*` macros.
#[derive(Debug)]
pub struct TestCaseError(String);
impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}
impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}
impl std::error::Error for TestCaseError {}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = outcome {
                        panic!(
                            "proptest `{}` failed at deterministic case {}/{}:\n  {}\n  inputs: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            e,
                            stringify!($($arg),*),
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert inside a `proptest!` body (returns a `TestCaseError` on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Prelude mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in -5i32..5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn vec_strategy_len(xs in prop::collection::vec(0u8..255, 2..9)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 9);
        }

        #[test]
        fn string_strategy_matches_shape(s in "(ab|cd)[x-z]{2,4}") {
            prop_assert!(s.starts_with("ab") || s.starts_with("cd"), "got {s:?}");
            let tail = &s[2..];
            prop_assert!(tail.len() >= 2 && tail.len() <= 4, "got {s:?}");
            prop_assert!(tail.chars().all(|c| ('x'..='z').contains(&c)), "got {s:?}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let gen = |run: &str| {
            let mut rng = super::TestRng::for_case(run, 7);
            (0..16).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(gen("alpha"), gen("alpha"));
        assert_ne!(gen("alpha"), gen("beta"));
    }
}
