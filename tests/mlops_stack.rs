//! Cross-crate integration of the operational-ML substrate: the course's
//! full technical loop executed through the facade crate, plus the
//! unit-by-unit lab workloads.

use ml_ops_course::cohort::labwork;
use ml_ops_course::mlops::allreduce::ReduceAlgo;
use ml_ops_course::mlops::cicd::{CicdConfig, CicdSystem, Commit, DeployOutcome};
use ml_ops_course::mlops::ddp::{train_ddp, DdpConfig};
use ml_ops_course::mlops::model::Dataset;
use ml_ops_course::mlops::registry::Stage;
use ml_ops_course::mlops::tracking::artifact_to_params;
use ml_ops_course::sched::{workload, Cluster, Placement, Policy, SchedSim};

#[test]
fn every_unit_lab_workload_passes() {
    for outcome in labwork::run_all_units(1000) {
        assert!(
            outcome.passed,
            "unit {} lab workload failed: {:?}",
            outcome.unit, outcome.metrics
        );
    }
}

#[test]
fn cicd_artifacts_are_loadable_models() {
    // The registry's production artifact deserializes into a model whose
    // flat-parameter size matches the configured architecture.
    let data = Dataset::blobs(550, 8, 11, 0.6, 2000);
    let (train, holdout) = data.split(0.8, 2001);
    let mut sys = CicdSystem::new("m", CicdConfig::default());
    match sys.run_commit(&Commit::healthy(1, "ship it"), &train, &holdout) {
        DeployOutcome::Promoted { .. } => {}
        other => panic!("expected promotion: {other:?}"),
    }
    let prod = sys
        .registry
        .in_stage("m", Stage::Production)
        .expect("production");
    let params = artifact_to_params(&prod.artifact);
    // [8, 32, 11] → 8·32 + 32 + 32·11 + 11 parameters.
    assert_eq!(params.len(), 8 * 32 + 32 + 32 * 11 + 11);
    assert!(params.iter().any(|&p| p != 0.0));
}

#[test]
fn ddp_collective_choice_does_not_change_learning() {
    // Ring, tree and parameter-server must agree (they compute the same
    // sum): accuracies within noise of each other on the same seed.
    let data = Dataset::blobs(330, 8, 11, 0.6, 2002);
    let mut accs = Vec::new();
    for algo in ReduceAlgo::ALL {
        let (_, report) = train_ddp(
            &DdpConfig {
                sizes: vec![8, 24, 11],
                workers: 4,
                epochs: 10,
                batch_size: 16,
                lr: 0.1,
                momentum: 0.9,
                algo,
                seed: 2003,
            },
            &data,
        );
        accs.push(report.history.last().unwrap().1);
    }
    let spread = accs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - accs.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(spread < 0.05, "collectives disagree: {accs:?}");
}

#[test]
fn scheduler_policies_preserve_work_conservation() {
    // Whatever the policy, total executed GPU-hours are identical — only
    // waiting changes.
    let jobs = workload::ml_trace(400, 0.8, 2004);
    let work: f64 = jobs
        .iter()
        .map(|j| j.gpus as f64 * j.duration.as_hours_f64())
        .sum();
    for policy in Policy::ALL {
        let schedule =
            SchedSim::new(Cluster::homogeneous(8, 4), policy, Placement::Packed).run(&jobs);
        let executed: f64 = schedule
            .outcomes()
            .iter()
            .map(|o| o.job.gpus as f64 * o.job.duration.as_hours_f64())
            .sum();
        assert!(
            (executed - work).abs() < 1e-6,
            "{} lost work",
            policy.name()
        );
    }
}

#[test]
fn backfilling_beats_fcfs_on_ml_traces() {
    // The Unit 5 lecture's claim, reproduced on the MLaaS-like trace.
    let jobs = workload::ml_trace(600, 1.0, 2005);
    let cluster = Cluster::homogeneous(8, 4);
    let fcfs = SchedSim::new(cluster.clone(), Policy::Fcfs, Placement::Packed)
        .run(&jobs)
        .metrics();
    let easy = SchedSim::new(cluster, Policy::EasyBackfill, Placement::Packed)
        .run(&jobs)
        .metrics();
    assert!(
        easy.mean_wait_hours < fcfs.mean_wait_hours,
        "backfill {:.2} h vs fcfs {:.2} h",
        easy.mean_wait_hours,
        fcfs.mean_wait_hours
    );
    assert!(easy.utilization >= fcfs.utilization - 1e-9);
}

#[test]
fn fair_share_protects_light_users() {
    // Fair share's promise is that users with small demand are not
    // starved by heavy users. Measure the mean wait of the lightest
    // quartile of users (by demanded GPU-hours), seed-averaged.
    let light_user_wait = |policy: Policy, seed: u64| -> f64 {
        use std::collections::HashMap;
        let jobs = workload::ml_trace(600, 1.1, seed);
        let schedule =
            SchedSim::new(Cluster::homogeneous(8, 4), policy, Placement::Packed).run(&jobs);
        let mut demand: HashMap<u32, f64> = HashMap::new();
        for j in &jobs {
            *demand.entry(j.user).or_insert(0.0) += j.gpus as f64 * j.duration.as_hours_f64();
        }
        let mut users: Vec<(u32, f64)> = demand.into_iter().collect();
        users.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
        let light: Vec<u32> = users[..users.len() / 4].iter().map(|&(u, _)| u).collect();
        let waits: Vec<f64> = schedule
            .outcomes()
            .iter()
            .filter(|o| light.contains(&o.job.user))
            .map(|o| o.wait_hours())
            .collect();
        waits.iter().sum::<f64>() / waits.len().max(1) as f64
    };
    let seeds = [2006u64, 2007, 2008, 2009, 2010];
    let easy: f64 = seeds
        .iter()
        .map(|&s| light_user_wait(Policy::EasyBackfill, s))
        .sum::<f64>()
        / seeds.len() as f64;
    let fair: f64 = seeds
        .iter()
        .map(|&s| light_user_wait(Policy::FairShare { backfill: true }, s))
        .sum::<f64>()
        / seeds.len() as f64;
    assert!(
        fair <= easy * 1.05,
        "fair share should not make light users wait longer: fair {fair:.2} h vs easy {easy:.2} h"
    );
}
