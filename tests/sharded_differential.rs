//! Differential test for the sharded semester driver (tier 1).
//!
//! The determinism contract of the sharded refactor: for any config,
//! the parallel driver ([`simulate_semester_with`]) must be
//! byte-identical to the strictly sequential reference
//! ([`simulate_semester_serial_with`]) at *any* rayon thread count —
//! ledger bytes, telemetry trace bytes, counters, fault stats, and the
//! digests of the experiment results built on top.

use ml_ops_course::cohort::semester::{
    simulate_semester_serial_with, simulate_semester_with, SemesterConfig,
};
use ml_ops_course::experiments::digest::fnv1a64;
use ml_ops_course::experiments::{capacity, fig1, fig2, fig3, headline, project_cost, table1};
use ml_ops_course::simkernel::parallel::with_thread_count;
use ml_ops_course::telemetry::{export_jsonl, MemorySink, Telemetry};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Run one semester and capture everything determinism-relevant as
/// comparable bytes. `threads == None` runs the sequential reference.
fn run_bytes(
    config: &SemesterConfig,
    seed: u64,
    threads: Option<usize>,
) -> (String, String, String) {
    let sink = MemorySink::new();
    let telemetry = Telemetry::with_sink(sink.clone());
    let outcome = match threads {
        None => simulate_semester_serial_with(config, seed, &telemetry),
        Some(t) => with_thread_count(t, || simulate_semester_with(config, seed, &telemetry)),
    };
    let trace = export_jsonl(&sink.events());
    let ledger = serde_json::to_string(outcome.ledger.records()).expect("ledger serializes");
    let scalars = format!(
        "qd={} pb={} faults={:?} metrics={}",
        outcome.quota_denials,
        outcome.slot_pushbacks,
        outcome.faults,
        serde_json::to_string(&telemetry.metrics_snapshot()).expect("metrics serialize"),
    );
    (trace, ledger, scalars)
}

#[test]
fn paper_course_parallel_matches_serial_at_every_thread_count() {
    // The paper course fits in a single shard (legacy path); the trace
    // and ledger must still be invariant to the ambient pool size.
    let config = SemesterConfig::paper_course();
    let reference = run_bytes(&config, 42, None);
    for t in THREAD_COUNTS {
        let run = run_bytes(&config, 42, Some(t));
        assert_eq!(
            reference, run,
            "paper course diverged from the sequential reference at {t} threads"
        );
    }
}

#[test]
fn forced_multi_shard_is_byte_identical_to_serial() {
    // Shrink the shard size so the paper course splits into 4 shards
    // (projects included) and the merge path does real work.
    let config = SemesterConfig {
        shard_students: 48,
        ..SemesterConfig::paper_course()
    };
    assert!(config.shards().len() > 1, "config must actually shard");
    let reference = run_bytes(&config, 42, None);
    assert!(
        reference.0.contains("\"shard\""),
        "multi-shard trace should carry shard annotations"
    );
    for t in THREAD_COUNTS {
        let run = run_bytes(&config, 42, Some(t));
        assert_eq!(
            reference, run,
            "sharded semester diverged from the sequential reference at {t} threads"
        );
    }
}

#[test]
fn experiments_results_digest_is_thread_invariant() {
    // Build the same JSON document `run-experiments` writes to
    // experiments_results.json (the per-context sections) at each
    // thread count, and require identical digests.
    let digest_at = |threads: usize| {
        with_thread_count(threads, || {
            let ctx = ml_ops_course::experiments::run_paper_course(42);
            let sections = [
                table1::run(&ctx).1,
                fig1::run(&ctx).1,
                fig2::run(&ctx).1,
                fig3::run(&ctx).1,
                project_cost::run(&ctx).1,
                headline::run(&ctx).1,
                capacity::run(&ctx).1,
            ];
            let json = serde_json::json!({ "seed": 42u64, "comparisons": sections });
            fnv1a64(
                serde_json::to_string_pretty(&json)
                    .expect("serialize results")
                    .as_bytes(),
            )
        })
    };
    let digests: Vec<u64> = THREAD_COUNTS.iter().map(|&t| digest_at(t)).collect();
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "experiments results digests differ across thread counts: {digests:016x?}"
    );
}
