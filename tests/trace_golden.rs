//! Golden-file contract for the telemetry trace: the JSONL export of a
//! small fixed-seed scenario must be byte-identical to the committed
//! fixture. Any change to event ordering, attribute sets, or JSON
//! rendering shows up as a diff here and must be made deliberately (by
//! regenerating the fixture with
//! `run-experiments trace --seed 7 --enrollment 3 --labs-only`).

use ml_ops_course::experiments::trace::{capture_trace, TraceConfig};

const GOLDEN: &str = include_str!("golden/trace_tiny_seed7.jsonl");

fn tiny() -> TraceConfig {
    TraceConfig {
        seed: 7,
        enrollment: 3,
        labs_only: true,
    }
}

#[test]
fn jsonl_trace_matches_golden_file() {
    let artifacts = capture_trace(&tiny());
    if artifacts.jsonl != GOLDEN {
        // Point at the first differing line so the failure is actionable.
        let mut line = 0usize;
        for (got, want) in artifacts.jsonl.lines().zip(GOLDEN.lines()) {
            line += 1;
            assert_eq!(
                got, want,
                "trace diverges from tests/golden/trace_tiny_seed7.jsonl at line {line}"
            );
        }
        panic!(
            "trace length changed: got {} lines, golden has {}",
            artifacts.jsonl.lines().count(),
            GOLDEN.lines().count()
        );
    }
}

#[test]
fn golden_scenario_covers_the_event_vocabulary() {
    // The fixture should keep exercising the hot-seam event names; if a
    // rename drops one, fail here rather than silently shrinking coverage.
    for name in [
        "stage.semester",
        "semester.plan",
        "semester.exec",
        "semester.week_start",
        "semester.finalize",
        "lease.accept",
        "instance.launch",
        "instance.terminate",
        "queue.pop",
    ] {
        assert!(
            GOLDEN.contains(&format!("\"name\":\"{name}\"")),
            "golden trace no longer contains event `{name}`"
        );
    }
}
