//! Tier-1 gate: the workspace must be `opml-detlint`-clean modulo the
//! committed baseline.
//!
//! Every finding — banned nondeterminism API, hash-order leak, rayon
//! hazard, lock-order cycle, determinism taint, reachable panic site, or
//! malformed suppression — fails this test unless it is either
//! suppressed in-source (`// detlint::allow(DL00x): reason`) or recorded
//! in `detlint.baseline.json`. The baseline is a one-way ratchet:
//! regenerate it only with `detlint --write-baseline` and review the
//! diff like any other code change.

use std::path::Path;

#[test]
fn workspace_is_detlint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut analysis = opml_detlint::analyze_workspace(root).expect("scan workspace sources");
    assert!(
        analysis.files_scanned > 50,
        "scan looks truncated: {} files",
        analysis.files_scanned
    );
    let baseline = opml_detlint::baseline::Baseline::load(&root.join("detlint.baseline.json"))
        .expect("load committed baseline");
    let stale = analysis.apply_baseline(&baseline);
    assert!(
        analysis.is_clean(),
        "detlint found {} finding(s) not in the baseline:\n{}",
        analysis.findings.len(),
        analysis.to_table()
    );
    assert!(
        stale.is_empty(),
        "stale baseline entries (fixed findings still accepted — tighten the ratchet): {stale:#?}"
    );
    // Every suppression must carry a reason (enforced at match time — a
    // reasonless allow never suppresses — so just assert the invariant).
    for s in &analysis.suppressed {
        assert!(
            !s.reason.is_empty(),
            "suppression without reason at {}:{}",
            s.finding.file,
            s.finding.line
        );
    }
}
