//! Tier-1 gate: the workspace must be `opml-detlint`-clean.
//!
//! Every unsuppressed finding — banned nondeterminism API, hash-order
//! leak, rayon hazard, lock-order cycle, or malformed suppression — fails
//! this test. Intentional exceptions need an in-source
//! `// detlint::allow(DL00x): reason` with a written justification.

use std::path::Path;

#[test]
fn workspace_is_detlint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let analysis = opml_detlint::analyze_workspace(root).expect("scan workspace sources");
    assert!(
        analysis.files_scanned > 50,
        "scan looks truncated: {} files",
        analysis.files_scanned
    );
    assert!(
        analysis.is_clean(),
        "detlint found {} unsuppressed finding(s):\n{}",
        analysis.findings.len(),
        analysis.to_table()
    );
    // Every suppression must carry a reason (enforced at match time — a
    // reasonless allow never suppresses — so just assert the invariant).
    for s in &analysis.suppressed {
        assert!(
            !s.reason.is_empty(),
            "suppression without reason at {}:{}",
            s.finding.file,
            s.finding.line
        );
    }
}
