//! Golden determinism gate for the self-profiler (`run-experiments
//! profile`): the digested `counts` subtree, the digested `alloc`
//! subtree, and the folded flamegraph stacks must be byte-identical
//! across repeated runs and across thread counts. Wall times and RSS
//! are measurements and may vary; everything the digests cover may
//! not.
//!
//! This binary installs the counting allocator process-wide (the same
//! wrapper `run-experiments --features alloc-profile` installs), so
//! the per-phase allocation ceilings below are measured for real —
//! they pin the hot-path allocation pass and fail if per-event string
//! churn creeps back into `shard.sim` or the merge phases.

use opml_experiments::profile::{run, ProfileConfig, ProfileReport};
use opml_profiler::Json;
use std::sync::Mutex;

#[global_allocator]
static COUNTING_ALLOC: opml_profiler::CountingAlloc = opml_profiler::CountingAlloc;

/// `run` mutates process-global profiler state (phase slots, counting
/// toggles); hold this across every profiled run so the harness's test
/// threads cannot interleave two captures.
static PROFILE_LOCK: Mutex<()> = Mutex::new(());

fn run_locked(config: &ProfileConfig) -> ProfileReport {
    let _guard = PROFILE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    run(config)
}

fn config(threads: usize) -> ProfileConfig {
    ProfileConfig {
        seed: 42,
        enrollment: 1_500,
        threads,
        ..ProfileConfig::default()
    }
}

/// Per-phase allocation-count ceilings for `config()` (seed 42, 1,500
/// students, default shard size), with ~25% headroom over the measured
/// post-optimization counts. The pre-optimization profiler measured
/// ~3x the `shard.sim` ceiling (per-event name `String`s plus sink
/// record clones) and ~250k in `merge.replay_restamp` (clone-and-
/// restamp), so a regression to either pattern lands far outside the
/// ceiling rather than flaking against it.
const SHARD_SIM_ALLOC_CEILING: u64 = 600_000;
const MERGE_REPLAY_ALLOC_CEILING: u64 = 50;
const MERGE_METRICS_ALLOC_CEILING: u64 = 200;
const MERGE_LEDGER_ALLOC_CEILING: u64 = 20;

fn phase_allocs(report: &ProfileReport, phase: &str) -> u64 {
    let alloc = Json::parse(&report.alloc_json).expect("alloc subtree parses");
    let phases = alloc
        .get("phases")
        .and_then(Json::as_array)
        .expect("alloc.phases");
    phases
        .iter()
        .find(|p| p.get("phase").and_then(Json::as_str) == Some(phase))
        .and_then(|p| p.get("allocs"))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("phase `{phase}` missing from alloc subtree"))
}

#[test]
fn profile_counts_are_stable_across_runs() {
    let a = run_locked(&config(2));
    let b = run_locked(&config(2));
    assert_eq!(a.counts_json, b.counts_json);
    assert_eq!(a.counts_digest, b.counts_digest);
    assert_eq!(a.folded, b.folded);
    assert_eq!(
        a.alloc_json, b.alloc_json,
        "user-phase allocation counts must be reproducible across runs"
    );
    assert_eq!(a.alloc_digest, b.alloc_digest);
}

#[test]
fn profile_counts_are_thread_count_invariant() {
    let one = run_locked(&config(1));
    let eight = run_locked(&config(8));
    assert_eq!(
        one.counts_json, eight.counts_json,
        "counts subtree must not depend on the rayon pool size"
    );
    assert_eq!(one.counts_digest, eight.counts_digest);
    assert_eq!(one.folded, eight.folded);
    assert_eq!(
        one.alloc_json, eight.alloc_json,
        "user-phase allocation counts must not depend on the rayon pool size"
    );
    assert_eq!(one.alloc_digest, eight.alloc_digest);
}

#[test]
fn profile_names_merge_phases_separately_from_shard_sim() {
    let report = run_locked(&config(2));
    for phase in [
        "shard.sim",
        "merge.replay_restamp",
        "merge.metrics",
        "merge.ledger",
    ] {
        assert!(
            report.text.contains(phase),
            "phase `{phase}` missing from the rendered table:\n{}",
            report.text
        );
    }
    // The folded stacks carry the sim-time span hierarchy.
    assert!(report.folded.contains("semester.plan"));
    assert!(report.events > 0);
}

#[test]
fn phase_alloc_counts_stay_under_the_optimized_ceilings() {
    if !opml_profiler::counting_allocator_installed() {
        // Defensive: this binary declares the allocator above, so the
        // probe can only fail if the declaration is removed.
        panic!("counting allocator not installed in the test binary");
    }
    let report = run_locked(&config(2));
    for (phase, ceiling) in [
        ("shard.sim", SHARD_SIM_ALLOC_CEILING),
        ("merge.replay_restamp", MERGE_REPLAY_ALLOC_CEILING),
        ("merge.metrics", MERGE_METRICS_ALLOC_CEILING),
        ("merge.ledger", MERGE_LEDGER_ALLOC_CEILING),
    ] {
        let allocs = phase_allocs(&report, phase);
        assert!(
            allocs <= ceiling,
            "phase `{phase}` allocated {allocs} times, ceiling is {ceiling} — \
             the hot-path allocation pass regressed"
        );
        assert!(
            allocs > 0 || phase != "shard.sim",
            "shard.sim cannot be alloc-free"
        );
    }
}

#[test]
fn pool_machinery_is_fenced_into_runtime_pool() {
    let report = run_locked(&config(8));
    // The digested subtrees must not mention the pool phase: its
    // numbers are thread-count dependent by design.
    assert!(
        !report.counts_json.contains("runtime.pool"),
        "runtime.pool leaked into the digested counts subtree"
    );
    assert!(
        !report.alloc_json.contains("runtime.pool"),
        "runtime.pool leaked into the digested alloc subtree"
    );
    // But the full profile document reports it, with the pool's
    // bookkeeping allocations attributed to it rather than to a user
    // phase.
    let doc = Json::parse(&report.json).expect("profile.json parses");
    let phases = doc
        .get("wall")
        .and_then(|w| w.get("phases"))
        .and_then(Json::as_array)
        .expect("wall.phases");
    let pool = phases
        .iter()
        .find(|p| p.get("phase").and_then(Json::as_str) == Some("runtime.pool"))
        .expect("runtime.pool phase missing from wall.phases");
    assert!(
        pool.get("enters").and_then(Json::as_u64).unwrap_or(0) > 0,
        "pool hooks never fired"
    );
    assert!(
        pool.get("allocs").and_then(Json::as_u64).unwrap_or(0) > 0,
        "pool dispatch at 8 threads must allocate (worker result buffers), \
         and those allocations must land in runtime.pool"
    );
}
