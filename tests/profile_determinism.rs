//! Golden determinism gate for the self-profiler (`run-experiments
//! profile`): the digested `counts` subtree and the folded flamegraph
//! stacks must be byte-identical across repeated runs and across
//! thread counts. Wall times and allocation totals are measurements
//! and may vary; everything the digest covers may not.

use opml_experiments::profile::{run, ProfileConfig};

fn config(threads: usize) -> ProfileConfig {
    ProfileConfig {
        seed: 42,
        enrollment: 1_500,
        threads,
        ..ProfileConfig::default()
    }
}

#[test]
fn profile_counts_are_stable_across_runs() {
    let a = run(&config(2));
    let b = run(&config(2));
    assert_eq!(a.counts_json, b.counts_json);
    assert_eq!(a.counts_digest, b.counts_digest);
    assert_eq!(a.folded, b.folded);
}

#[test]
fn profile_counts_are_thread_count_invariant() {
    let one = run(&config(1));
    let eight = run(&config(8));
    assert_eq!(
        one.counts_json, eight.counts_json,
        "counts subtree must not depend on the rayon pool size"
    );
    assert_eq!(one.counts_digest, eight.counts_digest);
    assert_eq!(one.folded, eight.folded);
}

#[test]
fn profile_names_merge_phases_separately_from_shard_sim() {
    let report = run(&config(2));
    for phase in [
        "shard.sim",
        "merge.replay_restamp",
        "merge.metrics",
        "merge.ledger",
    ] {
        assert!(
            report.text.contains(phase),
            "phase `{phase}` missing from the rendered table:\n{}",
            report.text
        );
    }
    // The folded stacks carry the sim-time span hierarchy.
    assert!(report.folded.contains("semester.plan"));
    assert!(report.events > 0);
}
