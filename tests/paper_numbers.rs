//! Paper-numbers regression suite (tier 1).
//!
//! EXPERIMENTS.md claims that at the default seed every paper-vs-
//! measured comparison lands within its declared tolerance — 71 of 71.
//! This test pins that claim: it reruns every section `run-experiments`
//! renders, at seed 42, and fails listing each comparison that fell
//! outside tolerance, plus the total row count so a silently dropped
//! (or duplicated) comparison also fails loudly.

use ml_ops_course::experiments::{
    ablation, capacity, fig1, fig2, fig3, headline, project_cost, run_paper_course, seeds,
    spot_ablation, table1,
};
use ml_ops_course::report::compare::ComparisonSet;

/// Total comparisons across all sections at the default seed (the "71
/// of 71" in EXPERIMENTS.md). Adding or removing a comparison is fine —
/// it just has to be deliberate enough to update this pin.
const PINNED_TOTAL: usize = 71;

#[test]
fn all_paper_comparisons_stay_within_declared_tolerance() {
    let seed = 42;
    let ctx = run_paper_course(seed);
    let sections: Vec<(&str, ComparisonSet)> = vec![
        ("table1", table1::run(&ctx).1),
        ("fig1", fig1::run(&ctx).1),
        ("fig2", fig2::run(&ctx).1),
        ("fig3", fig3::run(&ctx).1),
        ("project_cost", project_cost::run(&ctx).1),
        ("headline", headline::run(&ctx).1),
        ("capacity", capacity::run(&ctx).1),
        ("seeds", seeds::run(seed, 5).1),
        ("spot_ablation", spot_ablation::run(&ctx, seed).1),
        ("ablation", ablation::run(seed, 64).1),
    ];

    let mut total = 0usize;
    let mut failures: Vec<String> = Vec::new();
    for (section, cmp) in &sections {
        for row in &cmp.rows {
            total += 1;
            if !row.within_tolerance() {
                failures.push(format!(
                    "[{section}] {}: paper {} vs measured {} (ratio {:.4}, tol ±{:.0}%)",
                    row.name,
                    row.paper,
                    row.measured,
                    row.ratio(),
                    row.rel_tolerance * 100.0
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {total} comparisons out of tolerance:\n{}",
        failures.len(),
        failures.join("\n")
    );
    assert_eq!(
        total, PINNED_TOTAL,
        "comparison count drifted from the pinned {PINNED_TOTAL}; \
         update the pin only with a deliberate experiment change"
    );
}
