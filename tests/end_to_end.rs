//! End-to-end integration: simulate the course, meter it, price it, and
//! check the paper's headline shape — across crate boundaries, through
//! the facade's public API only.

use ml_ops_course::metering::rollup::PerStudentUsage;
use ml_ops_course::prelude::*;
use ml_ops_course::pricing::catalog::Provider;
use ml_ops_course::pricing::estimate::{per_student_lab_costs, price_project, ProjectUsageSummary};
use ml_ops_course::simkernel::stats::Summary;

fn small_course(enrollment: u32, projects: bool, seed: u64) -> SemesterOutcome {
    let config = SemesterConfig {
        enrollment,
        weeks: 14,
        run_projects: projects,
        vm_auto_terminate_after: None,
        faults: ml_ops_course::faults::FaultProfile::none(),
        shard_students: 191,
    };
    simulate_semester(&config, seed)
}

#[test]
fn ledger_to_dollars_pipeline() {
    let outcome = small_course(32, false, 1);
    let rollup = AssignmentRollup::from_ledger(&outcome.ledger, 32);
    let table = price_lab_assignments(&rollup);
    // Every non-edge row got priced on both providers.
    for row in &table.rows {
        if row.flavor.name() == "raspberrypi5" {
            assert!(row.aws_usd.is_none());
        } else {
            assert!(row.aws_usd.is_some(), "{} unpriced", row.tag);
            assert!(row.gcp_usd.is_some(), "{} unpriced", row.tag);
        }
    }
    assert!(table.total.aws_usd > 0.0);
    assert!(table.total.instance_hours > 0.0);
}

#[test]
fn vm_labs_dominate_instance_hours() {
    // The paper's core cost observation: the long-tailed VM labs (2, 3,
    // 7, 8) dwarf the auto-terminated GPU labs in hours.
    let outcome = small_course(32, false, 2);
    let rollup = AssignmentRollup::from_ledger(&outcome.ledger, 32);
    let vm_hours: f64 = ["lab1", "lab2", "lab3", "lab7", "lab8"]
        .iter()
        .map(|t| {
            rollup
                .rows_for(t)
                .iter()
                .map(|r| r.instance_hours)
                .sum::<f64>()
        })
        .sum();
    let leased_hours: f64 = [
        "lab4-multi",
        "lab4-single",
        "lab5-multi",
        "lab5-single",
        "lab6-opt",
        "lab6-edge",
        "lab6-system",
    ]
    .iter()
    .map(|t| {
        rollup
            .rows_for(t)
            .iter()
            .map(|r| r.instance_hours)
            .sum::<f64>()
    })
    .sum();
    assert!(
        vm_hours > 10.0 * leased_hours,
        "VM {vm_hours:.0} h vs leased {leased_hours:.0} h"
    );
}

#[test]
fn gpu_labs_cost_more_per_hour_but_less_overall_than_k8s_labs() {
    // Despite GPU rates being ~400x the t3.medium rate, the
    // non-terminated Kubernetes labs cost the same order of magnitude —
    // Table 1's most counterintuitive property.
    let outcome = small_course(48, false, 3);
    let rollup = AssignmentRollup::from_ledger(&outcome.ledger, 48);
    let table = price_lab_assignments(&rollup);
    let cost = |tag: &str| -> f64 {
        table
            .rows
            .iter()
            .filter(|r| r.tag == tag)
            .filter_map(|r| r.aws_usd)
            .sum()
    };
    let lab2 = cost("lab2");
    let lab4 = cost("lab4-multi");
    assert!(lab2 > 0.0 && lab4 > 0.0);
    let ratio = lab4 / lab2;
    assert!(
        (0.5..8.0).contains(&ratio),
        "GPU lab vs k8s lab cost ratio {ratio:.2} out of the paper's regime"
    );
}

#[test]
fn per_student_distribution_is_long_tailed() {
    let outcome = small_course(96, false, 4);
    let per = PerStudentUsage::from_ledger(&outcome.ledger);
    let costs: Vec<f64> = per_student_lab_costs(&per, Provider::Aws)
        .into_iter()
        .map(|(_, c)| c)
        .collect();
    assert_eq!(costs.len(), 96);
    let s = Summary::of(&costs);
    assert!(s.max > 2.5 * s.mean, "max {} mean {}", s.max, s.mean);
    assert!(s.p50 < s.mean, "long tail ⇒ median below mean");
}

#[test]
fn projects_roughly_double_the_bill() {
    // §5: labs ≈ $23.7k AWS, projects ≈ $25.9k AWS.
    let outcome = small_course(191, true, 5);
    let rollup = AssignmentRollup::from_ledger(&outcome.ledger, 191);
    let table = price_lab_assignments(&rollup);
    let project = ProjectUsageSummary::from_ledger(&outcome.ledger);
    let proj_aws = price_project(&project, Provider::Aws);
    let ratio = proj_aws / table.total.aws_usd;
    assert!(
        (0.7..1.6).contains(&ratio),
        "projects/labs cost ratio {ratio:.2}, expected ≈ 1.1"
    );
}

#[test]
fn quota_pressure_appears_at_scale_only() {
    let small = small_course(24, false, 6);
    assert_eq!(small.quota_denials, 0);
    // At 191 students the negotiated quota should still mostly hold; the
    // simulation reports, rather than hides, any pressure.
    let full = small_course(191, false, 6);
    let peak = full.ledger.peak_concurrent_instances();
    assert!(peak <= 600, "peak {peak} exceeded the negotiated quota");
    assert!(peak > 100, "peak {peak} implausibly low for 191 students");
}

#[test]
fn same_seed_same_bill() {
    let a = small_course(40, true, 7);
    let b = small_course(40, true, 7);
    let price = |o: &SemesterOutcome| {
        let rollup = AssignmentRollup::from_ledger(&o.ledger, 40);
        price_lab_assignments(&rollup).total.aws_usd
    };
    assert_eq!(price(&a), price(&b));
}
