//! Differential byte-identity harness for the hot-path allocation
//! pass (tier 1).
//!
//! The allocation pass changed *how* the hot paths produce their data
//! — event names became interned [`Sym`]s, the shard merge moved from
//! clone-and-restamp to an owned batched restamp, and the shard
//! buffers/ledgers are pre-sized — while promising that *what* they
//! produce is byte-for-byte unchanged. This harness pins that promise
//! at a forced multi-shard configuration (`shard_students = 48`):
//! trace JSONL bytes, ledger digest, metrics digest, and folded-stack
//! output must be identical between the sequential reference and the
//! parallel driver at 1, 2, and 8 threads; the committed golden trace
//! fixture must be reproduced exactly; and the intern table must stop
//! growing once a run's vocabulary has settled (the zero-allocation
//! regression probe for the emit hot path).

use ml_ops_course::cohort::semester::{
    simulate_semester_serial_with, simulate_semester_with, SemesterConfig,
};
use ml_ops_course::experiments::digest::fnv1a64;
use ml_ops_course::experiments::trace::{capture_trace, TraceConfig};
use ml_ops_course::simkernel::parallel::with_thread_count;
use ml_ops_course::telemetry::intern::interned_count;
use ml_ops_course::telemetry::{export_jsonl, MemorySink, Telemetry};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Everything the allocation pass promised not to change, as
/// comparable digests/bytes. `threads == None` runs the sequential
/// reference.
#[derive(Debug, PartialEq)]
struct RunBytes {
    trace: String,
    ledger_digest: u64,
    metrics_digest: u64,
    folded: String,
}

fn forced_multi_shard() -> SemesterConfig {
    let config = SemesterConfig {
        shard_students: 48,
        ..SemesterConfig::paper_course()
    };
    assert!(config.shards().len() > 1, "config must actually shard");
    config
}

fn run_bytes(config: &SemesterConfig, seed: u64, threads: Option<usize>) -> RunBytes {
    let sink = MemorySink::new();
    let telemetry = Telemetry::with_sink(sink.clone());
    let outcome = match threads {
        None => simulate_semester_serial_with(config, seed, &telemetry),
        Some(t) => with_thread_count(t, || simulate_semester_with(config, seed, &telemetry)),
    };
    let events = sink.take_events();
    let ledger = serde_json::to_string(outcome.ledger.records()).expect("ledger serializes");
    let metrics = serde_json::to_string(&telemetry.metrics_snapshot()).expect("metrics serialize");
    RunBytes {
        trace: export_jsonl(&events),
        ledger_digest: fnv1a64(ledger.as_bytes()),
        metrics_digest: fnv1a64(metrics.as_bytes()),
        folded: ml_ops_course::profiler::profile_spans(&events).to_folded(),
    }
}

#[test]
fn interning_and_owned_restamp_are_byte_invisible_at_any_thread_count() {
    let config = forced_multi_shard();
    let reference = run_bytes(&config, 42, None);
    assert!(
        !reference.trace.is_empty() && !reference.folded.is_empty(),
        "reference run must produce a trace and folded stacks"
    );
    for t in THREAD_COUNTS {
        let parallel = run_bytes(&config, 42, Some(t));
        assert_eq!(
            reference.ledger_digest, parallel.ledger_digest,
            "ledger digest diverged from the sequential reference at {t} threads"
        );
        assert_eq!(
            reference.metrics_digest, parallel.metrics_digest,
            "metrics digest diverged from the sequential reference at {t} threads"
        );
        assert_eq!(
            reference.folded, parallel.folded,
            "folded stacks diverged from the sequential reference at {t} threads"
        );
        assert_eq!(
            reference.trace, parallel.trace,
            "trace JSONL bytes diverged from the sequential reference at {t} threads"
        );
    }
}

#[test]
fn trace_golden_fixture_survives_the_allocation_pass() {
    // The committed fixture predates the interner; reproducing it
    // byte-for-byte is the proof that `Sym` resolution (not symbol
    // ids) reaches the wire.
    let golden = include_str!("golden/trace_tiny_seed7.jsonl");
    let artifacts = capture_trace(&TraceConfig {
        seed: 7,
        enrollment: 3,
        labs_only: true,
    });
    assert_eq!(
        artifacts.jsonl, golden,
        "interned trace export no longer matches tests/golden/trace_tiny_seed7.jsonl"
    );
}

#[test]
fn intern_table_settles_after_the_first_run() {
    let config = forced_multi_shard();
    // First run may intern names that no earlier test touched.
    let _ = run_bytes(&config, 42, Some(2));
    let settled = interned_count();
    assert!(settled > 0, "a telemetry-enabled run must intern names");
    // Re-running — at any thread count — must not grow the table: the
    // emit hot path only ever sees the read-lock fast path once the
    // vocabulary exists, which is what keeps it allocation-free.
    for t in THREAD_COUNTS {
        let _ = run_bytes(&config, 42, Some(t));
        assert_eq!(
            interned_count(),
            settled,
            "intern table grew on a repeat run at {t} threads"
        );
    }
}
