//! Differential test for the out-of-core streaming pipeline (tier 1).
//!
//! The spill contract: for any config, the streaming drivers
//! ([`simulate_semester_streaming`] / `_serial`) must reproduce the
//! in-memory drivers byte-for-byte — telemetry trace, ledger records in
//! canonical merge order, metrics snapshot, scalar counters and fault
//! stats — at any rayon thread count, while holding only O(shard) state
//! in memory. The incremental [`OutcomeDigest`] folded over the record
//! stream must equal [`digest_outcome`] of the materialized outcome.

use ml_ops_course::cohort::semester::{
    simulate_semester_serial_with, simulate_semester_with, SemesterConfig,
};
use ml_ops_course::cohort::spill::{
    simulate_semester_streaming, simulate_semester_streaming_serial, SpillConfig,
};
use ml_ops_course::experiments::scale::{digest_outcome, OutcomeDigest};
use ml_ops_course::simkernel::parallel::with_thread_count;
use ml_ops_course::telemetry::{export_jsonl, MemorySink, Telemetry};
use ml_ops_course::testbed::ledger::Ledger;
use std::path::PathBuf;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Paper course shrunk to 48-student shards so the merge does real
/// work (4 shards, projects included).
fn forced_spill_config() -> SemesterConfig {
    let config = SemesterConfig {
        shard_students: 48,
        ..SemesterConfig::paper_course()
    };
    assert!(config.shards().len() > 1, "config must actually shard");
    config
}

/// A per-arm spill directory under the cargo-managed temp root.
fn spill_dir(arm: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join("spill_differential")
        .join(arm)
}

/// Everything determinism-relevant from one run, as comparable bytes:
/// (trace, ledger, scalars-and-metrics, digest).
type RunBytes = (String, String, String, u64);

/// Run the in-memory driver and capture comparable bytes.
fn memory_bytes(config: &SemesterConfig, seed: u64, threads: Option<usize>) -> RunBytes {
    let sink = MemorySink::new();
    let telemetry = Telemetry::with_sink(sink.clone());
    let outcome = match threads {
        None => simulate_semester_serial_with(config, seed, &telemetry),
        Some(t) => with_thread_count(t, || simulate_semester_with(config, seed, &telemetry)),
    };
    let trace = export_jsonl(&sink.events());
    let ledger = serde_json::to_string(outcome.ledger.records()).expect("ledger serializes");
    let scalars = format!(
        "qd={} pb={} faults={:?} metrics={}",
        outcome.quota_denials,
        outcome.slot_pushbacks,
        outcome.faults,
        serde_json::to_string(&telemetry.metrics_snapshot()).expect("metrics serialize"),
    );
    let digest = digest_outcome(&outcome);
    (trace, ledger, scalars, digest)
}

/// Run the streaming driver, materializing the record stream only for
/// the comparison (production consumers fold it incrementally).
fn streaming_bytes(
    config: &SemesterConfig,
    seed: u64,
    threads: Option<usize>,
    arm: &str,
) -> RunBytes {
    let sink = MemorySink::new();
    let telemetry = Telemetry::with_sink(sink.clone());
    let spill = SpillConfig::new(spill_dir(arm));
    let mut collected = Ledger::new();
    let mut digest = OutcomeDigest::new();
    let consume = |rec: &ml_ops_course::testbed::ledger::UsageRecord| {
        digest.push(rec);
        collected.push(rec.clone());
    };
    let outcome = match threads {
        None => simulate_semester_streaming_serial(config, seed, &telemetry, &spill, consume),
        Some(t) => with_thread_count(t, || {
            simulate_semester_streaming(config, seed, &telemetry, &spill, consume)
        }),
    }
    .expect("streaming run succeeds");
    assert!(
        outcome.stats.shard_runs > 0,
        "multi-shard streaming run must actually spill"
    );
    assert_eq!(
        outcome.records as usize,
        collected.records().len(),
        "outcome record count must match delivered records"
    );
    let trace = export_jsonl(&sink.events());
    let ledger = serde_json::to_string(collected.records()).expect("ledger serializes");
    let scalars = format!(
        "qd={} pb={} faults={:?} metrics={}",
        outcome.quota_denials,
        outcome.slot_pushbacks,
        outcome.faults,
        serde_json::to_string(&telemetry.metrics_snapshot()).expect("metrics serialize"),
    );
    let hash = digest.finish(
        outcome.quota_denials,
        outcome.slot_pushbacks,
        &outcome.faults,
    );
    (trace, ledger, scalars, hash)
}

#[test]
fn streaming_serial_matches_in_memory_serial() {
    let config = forced_spill_config();
    let reference = memory_bytes(&config, 42, None);
    let streamed = streaming_bytes(&config, 42, None, "serial");
    assert_eq!(
        reference, streamed,
        "serial streaming run diverged from the in-memory sequential reference"
    );
}

#[test]
fn streaming_matches_in_memory_at_every_thread_count() {
    let config = forced_spill_config();
    let reference = memory_bytes(&config, 42, None);
    for t in THREAD_COUNTS {
        let streamed = streaming_bytes(&config, 42, Some(t), &format!("threads{t}"));
        assert_eq!(
            reference, streamed,
            "streaming run diverged from the in-memory reference at {t} threads"
        );
    }
}

#[test]
fn streaming_digest_is_seed_sensitive() {
    // Guard against a digest that ignores the stream: two seeds must
    // disagree through the same spill pipeline.
    let config = forced_spill_config();
    let a = streaming_bytes(&config, 42, Some(2), "seed42");
    let b = streaming_bytes(&config, 7, Some(2), "seed7");
    assert_ne!(a.3, b.3, "different seeds digested identically");
}
