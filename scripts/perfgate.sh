#!/usr/bin/env sh
# Perf-regression gate: rerun the differential benches in `--check`
# mode and compare against the committed BENCH_*.json baselines
# instead of overwriting them.
#
#   scripts/perfgate.sh          # calendar gate only (seconds)
#   scripts/perfgate.sh --full   # + the serve and semester sweeps (minutes)
#   scripts/perfgate.sh --regen  # regenerate every baseline, then gate
#                                # against what was just written (one
#                                # pass after a deliberate perf change)
#
# Knobs (environment):
#   PERFGATE_TOLERANCE        allowed fractional wall regression
#                             (default 0.10 = 10%)
#   PERFGATE_ABS_SLACK_S      absolute wall slack in seconds (default
#                             0.05: a relative gate on a ms-scale
#                             section is scheduler-jitter-dominated)
#   PERFGATE_RUNS             min-of-K run count (default: 3 for the
#                             calendar bench, 2 for the semester sweep;
#                             oversubscribed semester arms are digest-
#                             gated but exempt from the wall gate —
#                             timesliced wall clocks measure the host)
#   PERFGATE_INJECT_SLEEP_MS  synthetic slowdown per measured section,
#                             for testing the gate's own failure path:
#                             PERFGATE_INJECT_SLEEP_MS=500 scripts/perfgate.sh
#                             must exit nonzero
#
# Digest / count / schema mismatches are fatal regardless of tolerance.
# Baselines are host-specific wall times: after a deliberate perf
# change (or on new hardware), regenerate them with scripts/bench.sh
# and commit the updated BENCH_*.json.
set -eu

cd "$(dirname "$0")/.."

if [ "${1:-}" = "--regen" ]; then
    echo "==> perfgate: regenerating BENCH_calendar.json"
    cargo bench -q -p opml-bench --bench bench_calendar

    echo "==> perfgate: regenerating BENCH_serve.json"
    cargo bench -q -p opml-bench --bench bench_serve

    echo "==> perfgate: regenerating BENCH_semester.json"
    cargo bench -q -p opml-bench --bench bench_semester

    # Immediately gate against the fresh baselines: a regen that can't
    # pass its own check (digest drift between back-to-back runs, or a
    # wall time so noisy it blows the tolerance) is not a baseline
    # worth committing.
    set -- --full
fi

echo "==> perfgate: bench_calendar --check (vs BENCH_calendar.json)"
cargo bench -q -p opml-bench --bench bench_calendar -- --check

if [ "${1:-}" = "--full" ]; then
    echo "==> perfgate: bench_serve --check (vs BENCH_serve.json)"
    cargo bench -q -p opml-bench --bench bench_serve -- --check

    echo "==> perfgate: bench_semester --check (vs BENCH_semester.json)"
    cargo bench -q -p opml-bench --bench bench_semester -- --check
fi

echo "perfgate passed"
