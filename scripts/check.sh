#!/usr/bin/env sh
# Full local gate: format, build, lint, test.
#
# Mirrors what CI (and the tier-1 harness) runs; `detlint` is also a
# tier-1 test, but running it here gives the readable table on failure.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --release

echo "==> detlint"
cargo run --release -q -p opml-detlint --bin detlint

echo "==> cargo test -q"
cargo test -q

echo "all checks passed"
