#!/usr/bin/env sh
# Full local gate: format, build, lint, test.
#
# Mirrors what CI (and the tier-1 harness) runs; `detlint` is also a
# tier-1 test, but running it here gives the readable table on failure.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --release

echo "==> detlint (workspace, gated on detlint.baseline.json)"
cargo run --release -q -p opml-detlint --bin detlint -- --baseline detlint.baseline.json

echo "==> cargo clippy (detlint crate, deny warnings)"
cargo clippy -q -p opml-detlint --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> trace smoke run (tiny cohort, byte-stability)"
trace_dir=$(mktemp -d)
cargo run --release -q -p opml-experiments --bin run-experiments -- \
    trace --seed 7 --enrollment 3 --labs-only --quiet --out "$trace_dir/a"
cargo run --release -q -p opml-experiments --bin run-experiments -- \
    trace --seed 7 --enrollment 3 --labs-only --quiet --out "$trace_dir/b"
cmp "$trace_dir/a/trace.jsonl" "$trace_dir/b/trace.jsonl"
cmp "$trace_dir/a/trace_chrome.json" "$trace_dir/b/trace_chrome.json"
cmp "$trace_dir/a/trace.jsonl" tests/golden/trace_tiny_seed7.jsonl
rm -rf "$trace_dir"

echo "==> chaos smoke run (zero-rate must match the fault-free baseline)"
cargo run --release -q -p opml-experiments --bin run-experiments -- \
    chaos --rate 0.05 --seed 7 --quiet

echo "==> scale smoke run (100k cohort @ 2 threads vs golden digest)"
scale_digest=$(cargo run --release -q -p opml-experiments --bin run-experiments -- \
    scale --enrollment 100000 --threads 2 --digest-only --quiet \
    | sed -n 's/.*digest=\([0-9a-f]*\).*/\1/p')
golden_digest=$(cat tests/golden/scale_100k_seed42.digest)
if [ "$scale_digest" != "$golden_digest" ]; then
    echo "scale smoke FAILED: digest $scale_digest != golden $golden_digest" >&2
    exit 1
fi

echo "==> scale smoke run (1M cohort @ 2 threads vs golden digest)"
scale_1m_digest=$(cargo run --release -q -p opml-experiments --bin run-experiments -- \
    scale --enrollment 1000000 --threads 2 --digest-only --quiet \
    | sed -n 's/.*digest=\([0-9a-f]*\).*/\1/p')
golden_1m_digest=$(cat tests/golden/scale_1m_seed42.digest)
if [ "$scale_1m_digest" != "$golden_1m_digest" ]; then
    echo "1M scale smoke FAILED: digest $scale_1m_digest != golden $golden_1m_digest" >&2
    exit 1
fi

echo "==> spill smoke run (2k cohort forced out-of-core vs golden digest)"
# A 16 MB budget is far below the ~62 MB estimated in-memory peak at
# 2k students, so this arm must take the spill path — and the streamed
# digest must equal the in-memory golden byte-for-byte.
spill_out=$(cargo run --release -q -p opml-experiments --bin run-experiments -- \
    scale --enrollment 2000 --threads 2 --digest-only --mem-budget-mb 16 --quiet)
spill_digest=$(printf '%s\n' "$spill_out" | sed -n 's/.*digest=\([0-9a-f]*\).*/\1/p')
golden_spill_digest=$(cat tests/golden/scale_2k_seed42.digest)
if ! printf '%s\n' "$spill_out" | grep -q "out-of-core path engaged"; then
    echo "spill smoke FAILED: the 16 MB budget did not engage the spill path" >&2
    exit 1
fi
if [ "$spill_digest" != "$golden_spill_digest" ]; then
    echo "spill smoke FAILED: digest $spill_digest != golden $golden_spill_digest" >&2
    exit 1
fi

echo "==> serve smoke run (tiny ramp, digest stable across reruns and threads)"
serve_dir=$(mktemp -d)
serve_flags="serve --seed 7 --tenants 3 --servers 8 --target-rps 2 \
    --increment-rps 2 --max-rps 6 --round-secs 15 --quiet"
serve_a=$(cargo run --release -q -p opml-experiments --bin run-experiments -- \
    $serve_flags --out "$serve_dir/a" | sed -n 's/^counts_digest=//p')
serve_b=$(cargo run --release -q -p opml-experiments --bin run-experiments -- \
    $serve_flags --out "$serve_dir/b" | sed -n 's/^counts_digest=//p')
serve_c=$(cargo run --release -q -p opml-experiments --bin run-experiments -- \
    $serve_flags --threads 8 --out "$serve_dir/c" | sed -n 's/^counts_digest=//p')
if [ -z "$serve_a" ] || [ "$serve_a" != "$serve_b" ] || [ "$serve_a" != "$serve_c" ]; then
    echo "serve smoke FAILED: digests '$serve_a' / '$serve_b' / '$serve_c' diverge" >&2
    exit 1
fi
rm -rf "$serve_dir"

echo "==> telemetry overhead bench (<5% disabled-cost gate)"
cargo bench -p opml-bench --bench bench_telemetry

echo "==> perfgate smoke (calendar --check, generous tolerance)"
# The strict 10% gate belongs to scripts/perfgate.sh on a quiet host;
# here the tolerance is loose so a loaded CI box doesn't flake, while
# digest/count drift (fatal regardless of tolerance) still fails.
PERFGATE_TOLERANCE=1.0 PERFGATE_RUNS=2 \
    cargo bench -q -p opml-bench --bench bench_calendar -- --check

echo "==> profile smoke (counts digest stable across runs and threads)"
profile_dir=$(mktemp -d)
cargo run --release -q -p opml-experiments --bin run-experiments -- \
    profile --seed 42 --enrollment 2000 --threads 2 --out "$profile_dir/a" >/dev/null
cargo run --release -q -p opml-experiments --bin run-experiments -- \
    profile --seed 42 --enrollment 2000 --threads 8 --out "$profile_dir/b" >/dev/null
cmp "$profile_dir/a/profile.folded" "$profile_dir/b/profile.folded"
digest_a=$(sed -n 's/.*"counts_digest": "\([0-9a-f]*\)".*/\1/p' "$profile_dir/a/profile.json")
digest_b=$(sed -n 's/.*"counts_digest": "\([0-9a-f]*\)".*/\1/p' "$profile_dir/b/profile.json")
if [ -z "$digest_a" ] || [ "$digest_a" != "$digest_b" ]; then
    echo "profile smoke FAILED: counts digest '$digest_a' != '$digest_b' (2 vs 8 threads)" >&2
    exit 1
fi
rm -rf "$profile_dir"

echo "==> alloc-ceiling smoke (2k cohort, counting allocator compiled in)"
# Pins the hot-path allocation pass: shard.sim must stay far below the
# pre-optimization ~1.95M allocation count (budget has ~25% headroom
# over the measured post-pass count), and the digested alloc subtree
# must be present and pinned by alloc_digest.
alloc_dir=$(mktemp -d)
cargo run --release -q -p opml-experiments --features alloc-profile \
    --bin run-experiments -- \
    profile --seed 42 --enrollment 2000 --threads 2 --out "$alloc_dir" >/dev/null
shard_allocs=$(sed -n 's/.*"phase":"shard\.sim","allocs":\([0-9]*\).*/\1/p' \
    "$alloc_dir/profile.json")
alloc_digest=$(sed -n 's/.*"alloc_digest": "\([0-9a-f]*\)".*/\1/p' \
    "$alloc_dir/profile.json")
alloc_budget=800000
if [ -z "$shard_allocs" ] || [ -z "$alloc_digest" ]; then
    echo "alloc smoke FAILED: shard.sim allocs or alloc_digest missing from profile.json" >&2
    exit 1
fi
if [ "$shard_allocs" -gt "$alloc_budget" ]; then
    echo "alloc smoke FAILED: shard.sim allocated $shard_allocs times, budget is $alloc_budget" >&2
    exit 1
fi
rm -rf "$alloc_dir"

echo "all checks passed"
