#!/usr/bin/env sh
# Scaling + overhead benches, with machine-readable output.
#
# `bench_calendar` replays one op script through the sweep-line
# reservation calendar and the naive reference it replaced, fails on
# any divergence or a speedup below 50x, and writes BENCH_calendar.json.
#
# `bench_serve` pushes one fixed ramp through the service soak (the
# admission queue, shedder, breaker, and retry hot paths), enforces a
# wall-throughput floor, and writes BENCH_serve.json; its counts digest
# is thread-invariant, so the baseline doubles as a determinism anchor.
#
# `bench_semester` sweeps the sharded semester driver (10k/100k
# enrollment x 1/2/8 threads, plus serial and pre-shard monolithic
# references), verifies every arm's outcome digest against the serial
# reference, and writes BENCH_semester.json at the repo root. It exits
# nonzero if any arm diverges or the 100k speedup floor drops below 3x,
# so this script doubles as a determinism + performance gate.
#
# Takes a few minutes: the unsharded 10k reference arm is the long pole
# (~30s on one CPU).
#
# `scripts/bench.sh --check` delegates to the perf-regression gate
# (scripts/perfgate.sh --full): rerun both benches and compare against
# the committed BENCH_*.json instead of overwriting them.
set -eu

cd "$(dirname "$0")/.."

if [ "${1:-}" = "--check" ]; then
    exec scripts/perfgate.sh --full
fi

echo "==> bench_calendar (sweep-line vs naive differential -> BENCH_calendar.json)"
cargo bench -p opml-bench --bench bench_calendar

echo "==> bench_serve (ramping service soak -> BENCH_serve.json)"
cargo bench -p opml-bench --bench bench_serve

echo "==> bench_semester (sharded scaling sweep -> BENCH_semester.json)"
cargo bench -p opml-bench --bench bench_semester

echo "==> bench_telemetry (<5% disabled-cost gate)"
cargo bench -p opml-bench --bench bench_telemetry

echo "benches passed; reports in BENCH_calendar.json, BENCH_serve.json, and BENCH_semester.json"
